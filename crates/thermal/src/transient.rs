//! Transient thermal simulation (the time-stepping counterpart of the
//! steady-state grid solver, as in HotSpot's RC-network mode).
//!
//! Each grid cell gains a heat capacity `C = c_v · volume`; temperatures
//! evolve by explicit forward-Euler integration of `C · dT/dt = P + Σ g ·
//! (T_n − T)`. The step size is bounded by the smallest cell time constant
//! for stability; callers give a wall-clock duration and the module
//! sub-steps internally.
//!
//! Used to answer questions the steady state cannot: how fast does an M3D
//! stack heat up after a power step (thermal coupling between the layers is
//! nearly instantaneous thanks to the 100 nm ILD), and how much headroom do
//! thermal sprints have.

use crate::floorplan::Floorplan;
use crate::solver::{LayerPower, ThermalConfig};
use m3d_tech::layers::LayerStack;

/// Volumetric heat capacity of silicon, J/(m³·K).
const CV_SILICON: f64 = 1.75e6;
/// Volumetric heat capacity of metal layers (copper-dominated), J/(m³·K).
const CV_METAL: f64 = 3.4e6;
/// Volumetric heat capacity of dielectrics/TIM, J/(m³·K).
const CV_DIELECTRIC: f64 = 1.6e6;

fn cv_of(name: &str) -> f64 {
    if name.contains("Si") {
        CV_SILICON
    } else if name.contains("Metal") || name.contains("IHS") {
        CV_METAL
    } else {
        CV_DIELECTRIC
    }
}

/// A transient simulation of one chip stack.
#[derive(Debug)]
pub struct TransientSim {
    stack: LayerStack,
    cfg: ThermalConfig,
    nx: usize,
    ny: usize,
    width: f64,
    height: f64,
    /// Per-layer, per-cell temperatures (°C), sink-first like the stack.
    pub temps_c: Vec<Vec<f64>>,
    power: Vec<Vec<f64>>,
    caps: Vec<f64>,
    lat_gx: Vec<f64>,
    lat_gy: Vec<f64>,
    vert_g: Vec<f64>,
    g_amb: f64,
    dev: Vec<usize>,
    /// Elapsed simulated time, seconds.
    pub elapsed_s: f64,
}

impl TransientSim {
    /// Initialise at ambient with the given power maps (same conventions as
    /// [`crate::solver::solve`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the steady-state solver.
    pub fn new(stack: &LayerStack, layer_powers: &[LayerPower], cfg: &ThermalConfig) -> Self {
        assert!(!layer_powers.is_empty(), "need at least one powered layer");
        let dev = stack.device_layer_indices();
        assert!(
            layer_powers.len() <= dev.len(),
            "more power maps than device layers"
        );
        let width = layer_powers
            .iter()
            .map(|l| l.floorplan.width_m)
            .fold(0.0, f64::max);
        let height = layer_powers
            .iter()
            .map(|l| l.floorplan.height_m)
            .fold(0.0, f64::max);
        let (nx, ny) = (cfg.nx, cfg.ny);
        let (dx, dy) = (width / nx as f64, height / ny as f64);
        let n_cells = nx * ny;
        let nl = stack.layers.len();

        let mut sim = Self {
            stack: stack.clone(),
            cfg: cfg.clone(),
            nx,
            ny,
            width,
            height,
            temps_c: vec![vec![cfg.ambient_c; n_cells]; nl],
            power: vec![vec![0.0; n_cells]; nl],
            caps: stack
                .layers
                .iter()
                .map(|l| cv_of(l.name) * l.thickness_m * dx * dy)
                .collect(),
            lat_gx: stack
                .layers
                .iter()
                .map(|l| l.conductivity_w_mk * (l.thickness_m * dy) / dx)
                .collect(),
            lat_gy: stack
                .layers
                .iter()
                .map(|l| l.conductivity_w_mk * (l.thickness_m * dx) / dy)
                .collect(),
            vert_g: (0..nl.saturating_sub(1))
                .map(|l| {
                    let a = &stack.layers[l];
                    let b = &stack.layers[l + 1];
                    let r = a.thickness_m / (2.0 * a.conductivity_w_mk)
                        + b.thickness_m / (2.0 * b.conductivity_w_mk);
                    dx * dy / r
                })
                .collect(),
            g_amb: 1.0 / (cfg.convection_k_per_w * n_cells as f64),
            dev: dev.clone(),
            elapsed_s: 0.0,
        };
        sim.set_power(layer_powers);
        sim
    }

    /// Replace the power maps (e.g. to model a power step or a sprint).
    pub fn set_power(&mut self, layer_powers: &[LayerPower]) {
        let (dx, dy) = (self.width / self.nx as f64, self.height / self.ny as f64);
        for p in &mut self.power {
            p.iter_mut().for_each(|v| *v = 0.0);
        }
        for (li, lp) in layer_powers.iter().enumerate() {
            let l = self.dev[li];
            let fp: &Floorplan = &lp.floorplan;
            let mut cells_in_block = vec![0usize; fp.blocks.len()];
            let mut cell_block = vec![usize::MAX; self.nx * self.ny];
            for j in 0..self.ny {
                for i in 0..self.nx {
                    let x = (i as f64 + 0.5) * dx * (fp.width_m / self.width);
                    let y = (j as f64 + 0.5) * dy * (fp.height_m / self.height);
                    if let Some(bi) = fp.blocks.iter().position(|b| b.contains(x, y)) {
                        cells_in_block[bi] += 1;
                        cell_block[j * self.nx + i] = bi;
                    }
                }
            }
            for (c, &bi) in cell_block.iter().enumerate() {
                if bi != usize::MAX && cells_in_block[bi] > 0 {
                    self.power[l][c] += lp.power_w[bi] / cells_in_block[bi] as f64;
                }
            }
        }
    }

    /// The largest stable forward-Euler step, seconds.
    pub fn max_stable_step_s(&self) -> f64 {
        let nl = self.stack.layers.len();
        let mut min_tau = f64::INFINITY;
        for l in 0..nl {
            let mut g = 4.0 * self.lat_gx[l].max(self.lat_gy[l]);
            if l > 0 {
                g += self.vert_g[l - 1];
            }
            if l + 1 < nl {
                g += self.vert_g[l];
            }
            if l == 0 {
                g += self.g_amb;
            }
            min_tau = min_tau.min(self.caps[l] / g);
        }
        0.5 * min_tau
    }

    /// Advance the simulation by `duration_s`, sub-stepping for stability.
    pub fn advance(&mut self, duration_s: f64) {
        let dt_max = self.max_stable_step_s();
        let steps = (duration_s / dt_max).ceil().max(1.0) as usize;
        let dt = duration_s / steps as f64;
        let (nx, ny) = (self.nx, self.ny);
        let nl = self.stack.layers.len();
        let mut next = self.temps_c.clone();
        for _ in 0..steps {
            for l in 0..nl {
                for j in 0..ny {
                    for i in 0..nx {
                        let c = j * nx + i;
                        let t = self.temps_c[l][c];
                        let mut flux = self.power[l][c];
                        if i > 0 {
                            flux += self.lat_gx[l] * (self.temps_c[l][c - 1] - t);
                        }
                        if i + 1 < nx {
                            flux += self.lat_gx[l] * (self.temps_c[l][c + 1] - t);
                        }
                        if j > 0 {
                            flux += self.lat_gy[l] * (self.temps_c[l][c - nx] - t);
                        }
                        if j + 1 < ny {
                            flux += self.lat_gy[l] * (self.temps_c[l][c + nx] - t);
                        }
                        if l > 0 {
                            flux += self.vert_g[l - 1] * (self.temps_c[l - 1][c] - t);
                        }
                        if l + 1 < nl {
                            flux += self.vert_g[l] * (self.temps_c[l + 1][c] - t);
                        }
                        if l == 0 {
                            flux += self.g_amb * (self.cfg.ambient_c - t);
                        }
                        next[l][c] = t + dt * flux / self.caps[l];
                    }
                }
            }
            std::mem::swap(&mut self.temps_c, &mut next);
            self.elapsed_s += dt;
        }
    }

    /// Peak device-layer temperature, °C.
    pub fn peak_c(&self) -> f64 {
        self.dev
            .iter()
            .flat_map(|&l| self.temps_c[l].iter().copied())
            .fold(self.cfg.ambient_c, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;

    fn small_cfg() -> ThermalConfig {
        ThermalConfig {
            nx: 8,
            ny: 8,
            ..ThermalConfig::default()
        }
    }

    fn powered(stack: &LayerStack, w: f64) -> Vec<LayerPower> {
        let n_dev = stack.device_layer_indices().len();
        let area = if n_dev == 2 { 4.5e-6 } else { 9.0e-6 };
        let fp = Floorplan::ryzen_like(area);
        let p = fp.uniform_power(w / n_dev as f64);
        (0..n_dev)
            .map(|_| LayerPower {
                floorplan: fp.clone(),
                power_w: p.clone(),
            })
            .collect()
    }

    #[test]
    fn starts_at_ambient_and_heats_up() {
        let stack = LayerStack::planar_2d();
        let mut sim = TransientSim::new(&stack, &powered(&stack, 6.4), &small_cfg());
        assert!((sim.peak_c() - small_cfg().ambient_c).abs() < 1e-9);
        sim.advance(0.01);
        assert!(sim.peak_c() > small_cfg().ambient_c + 1.0);
    }

    #[test]
    fn converges_toward_steady_state() {
        let stack = LayerStack::planar_2d();
        let layers = powered(&stack, 6.4);
        let cfg = small_cfg();
        let steady = solve(&stack, &layers, &cfg).peak_c;
        let mut sim = TransientSim::new(&stack, &layers, &cfg);
        // The die-level transient settles in milliseconds; the sink-level
        // one in seconds. Advance far enough to be near the die steady state.
        sim.advance(20.0);
        let gap = (sim.peak_c() - steady).abs();
        assert!(gap < 0.15 * steady, "transient {} vs steady {steady}", sim.peak_c());
    }

    #[test]
    fn m3d_layers_track_each_other_through_the_transient() {
        // The sub-micron ILD couples the two device layers almost instantly:
        // even early in the transient their temperatures agree closely.
        let stack = LayerStack::m3d();
        let mut sim = TransientSim::new(&stack, &powered(&stack, 6.4), &small_cfg());
        sim.advance(1e-3);
        let dev = stack.device_layer_indices();
        let max_of = |l: usize| {
            sim.temps_c[l]
                .iter()
                .copied()
                .fold(f64::MIN, f64::max)
        };
        let gap = (max_of(dev[0]) - max_of(dev[1])).abs();
        assert!(gap < 1.0, "layer gap {gap} C");
    }

    #[test]
    fn power_step_raises_temperature() {
        let stack = LayerStack::planar_2d();
        let lo = powered(&stack, 4.0);
        let hi = powered(&stack, 12.0);
        let mut sim = TransientSim::new(&stack, &lo, &small_cfg());
        sim.advance(0.05);
        let before = sim.peak_c();
        sim.set_power(&hi);
        sim.advance(0.05);
        assert!(sim.peak_c() > before + 2.0);
    }

    #[test]
    fn stable_step_is_positive_and_finite() {
        let stack = LayerStack::tsv3d();
        let sim = TransientSim::new(&stack, &powered(&stack, 6.4), &small_cfg());
        let dt = sim.max_stable_step_s();
        assert!(dt.is_finite() && dt > 0.0);
    }
}
