//! Core floorplans and per-block power maps.
//!
//! The paper bases its floorplan on AMD Ryzen (Section 7.1.3) and, for the
//! M3D thermal experiment, conservatively assumes a 50% footprint reduction.

/// A rectangular block of a floorplan. Coordinates are in metres, relative
/// to the chip's lower-left corner.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Unit name ("IQ", "FPU", ...).
    pub name: String,
    /// Left edge, metres.
    pub x_m: f64,
    /// Bottom edge, metres.
    pub y_m: f64,
    /// Width, metres.
    pub w_m: f64,
    /// Height, metres.
    pub h_m: f64,
}

impl Block {
    /// Block area in square metres.
    pub fn area_m2(&self) -> f64 {
        self.w_m * self.h_m
    }

    /// Whether the point `(x, y)` lies inside the block.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x_m && x < self.x_m + self.w_m && y >= self.y_m && y < self.y_m + self.h_m
    }
}

/// A floorplan: chip dimensions plus a set of non-overlapping blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Chip width, metres.
    pub width_m: f64,
    /// Chip height, metres.
    pub height_m: f64,
    /// The functional blocks.
    pub blocks: Vec<Block>,
}

/// Fraction of core area taken by each Ryzen-like unit, in layout order.
/// Derived from annotated Zen die shots: the FPU and the load/store + L1D
/// region dominate; the scheduler (IQ) and register file are small but hot.
const RYZEN_UNITS: [(&str, f64); 9] = [
    ("Fetch+BPU", 0.14),
    ("IL1", 0.08),
    ("Decode+Rename", 0.12),
    ("IQ", 0.07),
    ("RF", 0.05),
    ("ALU", 0.12),
    ("FPU", 0.18),
    ("LSU+DL1", 0.16),
    ("L2ctl", 0.08),
];

impl Floorplan {
    /// A Ryzen-like single-core floorplan with the given total area (m²).
    /// Blocks are laid out in three rows, preserving the unit area shares.
    ///
    /// # Panics
    ///
    /// Panics if `area_m2` is not positive and finite.
    pub fn ryzen_like(area_m2: f64) -> Self {
        assert!(
            area_m2.is_finite() && area_m2 > 0.0,
            "area must be positive, got {area_m2}"
        );
        let side = area_m2.sqrt();
        let rows: [&[usize]; 3] = [&[0, 1, 2], &[3, 4, 5], &[6, 7, 8]];
        let mut blocks = Vec::new();
        let mut y = 0.0;
        for row in rows {
            let row_share: f64 = row.iter().map(|&i| RYZEN_UNITS[i].1).sum();
            let row_total: f64 = RYZEN_UNITS.iter().map(|u| u.1).sum();
            let row_h = side * row_share / row_total;
            let mut x = 0.0;
            for &i in row {
                let (name, share) = RYZEN_UNITS[i];
                let w = side * share / row_share;
                blocks.push(Block {
                    name: name.to_owned(),
                    x_m: x,
                    y_m: y,
                    w_m: w,
                    h_m: row_h,
                });
                x += w;
            }
            y += row_h;
        }
        Self {
            width_m: side,
            height_m: side,
            blocks,
        }
    }

    /// The same floorplan folded to a fraction of its area (linear dims scale
    /// by `sqrt(scale)`), as when a core is split across two M3D layers.
    pub fn scaled(&self, area_scale: f64) -> Self {
        assert!(area_scale > 0.0, "scale must be positive");
        let s = area_scale.sqrt();
        Self {
            width_m: self.width_m * s,
            height_m: self.height_m * s,
            blocks: self
                .blocks
                .iter()
                .map(|b| Block {
                    name: b.name.clone(),
                    x_m: b.x_m * s,
                    y_m: b.y_m * s,
                    w_m: b.w_m * s,
                    h_m: b.h_m * s,
                })
                .collect(),
        }
    }

    /// Find the block covering a point.
    pub fn block_at(&self, x: f64, y: f64) -> Option<&Block> {
        self.blocks.iter().find(|b| b.contains(x, y))
    }

    /// Index of a block by name.
    pub fn block_index(&self, name: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.name == name)
    }

    /// Total block area (m²).
    pub fn blocks_area_m2(&self) -> f64 {
        self.blocks.iter().map(Block::area_m2).sum()
    }

    /// A power map that spreads `total_w` over the blocks proportionally to
    /// their area (a uniform power density).
    pub fn uniform_power(&self, total_w: f64) -> Vec<f64> {
        let total_area = self.blocks_area_m2();
        self.blocks
            .iter()
            .map(|b| total_w * b.area_m2() / total_area)
            .collect()
    }

    /// A power map from named per-block watts; unnamed blocks get zero.
    ///
    /// # Panics
    ///
    /// Panics if a named block does not exist in the floorplan.
    pub fn power_from_named(&self, named: &[(&str, f64)]) -> Vec<f64> {
        let mut v = vec![0.0; self.blocks.len()];
        for (name, w) in named {
            let i = self
                .block_index(name)
                .unwrap_or_else(|| panic!("no block named {name}"));
            v[i] += w;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ryzen_like_covers_requested_area() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let total: f64 = fp.blocks_area_m2();
        assert!((total - 9.0e-6).abs() / 9.0e-6 < 1e-9);
        assert_eq!(fp.blocks.len(), 9);
    }

    #[test]
    fn blocks_tile_without_overlap() {
        let fp = Floorplan::ryzen_like(4.0e-6);
        // Probe a grid of points: each is inside exactly one block.
        for i in 0..20 {
            for j in 0..20 {
                let x = (i as f64 + 0.5) / 20.0 * fp.width_m;
                let y = (j as f64 + 0.5) / 20.0 * fp.height_m;
                let n = fp.blocks.iter().filter(|b| b.contains(x, y)).count();
                assert_eq!(n, 1, "point ({i},{j}) covered by {n} blocks");
            }
        }
    }

    #[test]
    fn scaled_halves_area() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let half = fp.scaled(0.5);
        assert!((half.blocks_area_m2() - 4.5e-6).abs() < 1e-12);
        // Names and relative positions preserved.
        assert_eq!(half.blocks.len(), fp.blocks.len());
        assert_eq!(half.blocks[0].name, fp.blocks[0].name);
    }

    #[test]
    fn uniform_power_sums_to_total() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = fp.uniform_power(6.4);
        let sum: f64 = p.iter().sum();
        assert!((sum - 6.4).abs() < 1e-9);
    }

    #[test]
    fn named_power_assignment() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = fp.power_from_named(&[("IQ", 1.0), ("FPU", 2.0)]);
        assert!((p.iter().sum::<f64>() - 3.0).abs() < 1e-12);
        assert!(p[fp.block_index("FPU").unwrap()] == 2.0);
    }

    #[test]
    #[should_panic(expected = "no block named")]
    fn rejects_unknown_block() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let _ = fp.power_from_named(&[("GPU", 1.0)]);
    }
}
