//! HotSpot-style compact thermal model for 2D, M3D, and TSV3D chips
//! (paper Section 6, Table 10, Figure 8).
//!
//! The chip is discretised into a 3D grid of thermal cells: one grid layer
//! per material layer of the [`m3d_tech::layers::LayerStack`], `nx × ny`
//! cells per layer. Cells exchange heat laterally within a layer and
//! vertically between layers through conductances derived from the material
//! conductivities and geometry; the heat sink connects to ambient through a
//! convection resistance. Power is injected in the device layers according
//! to a [`floorplan::Floorplan`] and per-block power map. The steady state
//! is found by red–black successive over-relaxation, parallelised across
//! grid rows when the grid is large enough to pay for the threads.
//!
//! Two levels of API:
//!
//! * [`solver::solve`] — one-shot convenience: panic-on-misuse, cold start,
//!   config clamped into range, model assembly cached process-wide.
//! * [`model::ThermalModel`] — assemble a design once (or fetch it from a
//!   [`model::ModelCache`]), then run many solves with different power
//!   vectors, warm starts, an explicit [`model::SweepMode`], and
//!   [`model::SolveStats`] diagnostics. This is the API the experiment
//!   drivers in `m3d-core` use.
//!
//! # Example
//!
//! ```
//! use m3d_thermal::floorplan::Floorplan;
//! use m3d_thermal::solver::{solve, LayerPower, ThermalConfig};
//! use m3d_tech::layers::LayerStack;
//!
//! let fp = Floorplan::ryzen_like(9.0e-6); // 9 mm² core
//! let power = fp.uniform_power(6.4);
//! let sol = solve(
//!     &LayerStack::planar_2d(),
//!     &[LayerPower { floorplan: fp, power_w: power }],
//!     &ThermalConfig::default(),
//! );
//! assert!(sol.peak_c > 45.0 && sol.peak_c < 110.0);
//! ```
//!
//! Reusing a model across power vectors with a warm start:
//!
//! ```
//! use m3d_thermal::floorplan::Floorplan;
//! use m3d_thermal::model::ThermalModel;
//! use m3d_thermal::solver::ThermalConfig;
//! use m3d_tech::layers::LayerStack;
//!
//! let fp = Floorplan::ryzen_like(9.0e-6);
//! let cfg = ThermalConfig::default();
//! let model = ThermalModel::new(&LayerStack::planar_2d(), &[fp.clone()], &cfg)?;
//! let (low, _) = model.solve(&[fp.uniform_power(4.0)])?;
//! let (high, stats) = model.solve_from(&[fp.uniform_power(6.0)], Some(&low))?;
//! assert!(stats.warm_start && high.peak_c > low.peak_c);
//! # Ok::<(), m3d_thermal::model::ThermalError>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod floorplan;
pub mod model;
pub mod solver;
pub mod transient;

pub use floorplan::{Block, Floorplan};
pub use model::{
    shared_cache, ModelCache, SolveStats, SolveStatsSummary, SweepMode, ThermalError,
    ThermalModel,
};
pub use solver::{solve, solve_with_stats, LayerPower, Solution, ThermalConfig};
pub use transient::TransientSim;
