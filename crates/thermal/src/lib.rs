//! HotSpot-style compact thermal model for 2D, M3D, and TSV3D chips
//! (paper Section 6, Table 10, Figure 8).
//!
//! The chip is discretised into a 3D grid of thermal cells: one grid layer
//! per material layer of the [`m3d_tech::layers::LayerStack`], `nx × ny`
//! cells per layer. Cells exchange heat laterally within a layer and
//! vertically between layers through conductances derived from the material
//! conductivities and geometry; the heat sink connects to ambient through a
//! convection resistance. Power is injected in the device layers according
//! to a [`floorplan::Floorplan`] and per-block power map. The steady state
//! is found by successive over-relaxation.
//!
//! # Example
//!
//! ```
//! use m3d_thermal::floorplan::Floorplan;
//! use m3d_thermal::solver::{solve, LayerPower, ThermalConfig};
//! use m3d_tech::layers::LayerStack;
//!
//! let fp = Floorplan::ryzen_like(9.0e-6); // 9 mm² core
//! let power = fp.uniform_power(6.4);
//! let sol = solve(
//!     &LayerStack::planar_2d(),
//!     &[LayerPower { floorplan: fp, power_w: power }],
//!     &ThermalConfig::default(),
//! );
//! assert!(sol.peak_c > 45.0 && sol.peak_c < 110.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod floorplan;
pub mod solver;
pub mod transient;

pub use floorplan::{Block, Floorplan};
pub use solver::{solve, LayerPower, Solution, ThermalConfig};
pub use transient::TransientSim;
