//! Steady-state 3D grid solver (the HotSpot grid model).
//!
//! Each material layer of the stack becomes one grid layer of `nx × ny`
//! cells. Conductances:
//!
//! * lateral, within a layer: `g = k · (t · dy) / dx` between side-adjacent
//!   cells;
//! * vertical, between layers: series combination of each layer's half
//!   thickness, `g = A / (t₁/(2k₁) + t₂/(2k₂))`;
//! * sink-to-ambient: the stack's first layer connects to ambient through
//!   the convection resistance, distributed over its cells.
//!
//! Power is injected in device-layer cells from the floorplan power maps.
//! Successive over-relaxation iterates `T = (Σ g·T_neighbour + P) / Σ g`.

use crate::floorplan::Floorplan;
use m3d_tech::layers::{LayerStack, HEAT_SINK_TO_AMBIENT_K_PER_W};

/// Power injected into one device layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPower {
    /// The layer's floorplan (sets the chip footprint for that layer).
    pub floorplan: Floorplan,
    /// Per-block power, watts, aligned with `floorplan.blocks`.
    pub power_w: Vec<f64>,
}

impl LayerPower {
    /// Total power of this layer, watts.
    pub fn total_w(&self) -> f64 {
        self.power_w.iter().sum()
    }
}

/// Solver configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalConfig {
    /// Grid cells along x.
    pub nx: usize,
    /// Grid cells along y.
    pub ny: usize,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
    /// Heat-sink-to-ambient convection resistance, K/W.
    pub convection_k_per_w: f64,
    /// SOR relaxation factor (1.0 = Gauss-Seidel).
    pub sor_omega: f64,
    /// Convergence threshold on the max per-sweep update, K.
    pub tolerance_k: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        Self {
            nx: 24,
            ny: 24,
            ambient_c: 45.0,
            convection_k_per_w: HEAT_SINK_TO_AMBIENT_K_PER_W,
            sor_omega: 1.6,
            tolerance_k: 1e-4,
            max_iters: 20_000,
        }
    }
}

/// Steady-state solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Temperatures per stack layer, each `nx × ny` row-major, °C.
    pub layer_temps_c: Vec<Vec<f64>>,
    /// Peak temperature anywhere in a device layer, °C.
    pub peak_c: f64,
    /// Peak temperature per block name (max over device layers), °C.
    pub block_peaks_c: Vec<(String, f64)>,
    /// Iterations used.
    pub iterations: usize,
}

impl Solution {
    /// Peak temperature of a named block, if present.
    pub fn block_peak_c(&self, name: &str) -> Option<f64> {
        self.block_peaks_c
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
    }

    /// The hottest block.
    pub fn hottest_block(&self) -> Option<(&str, f64)> {
        self.block_peaks_c
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("temps are finite"))
            .map(|(n, t)| (n.as_str(), *t))
    }
}

/// Solve the steady-state temperature field.
///
/// `layer_powers` are assigned to the stack's device layers in stack order
/// (sink-first); extra device layers (if any) receive no power.
///
/// # Panics
///
/// Panics if `layer_powers` is empty or exceeds the number of device layers,
/// or if a power map length mismatches its floorplan.
pub fn solve(stack: &LayerStack, layer_powers: &[LayerPower], cfg: &ThermalConfig) -> Solution {
    assert!(!layer_powers.is_empty(), "need at least one powered layer");
    let dev = stack.device_layer_indices();
    assert!(
        layer_powers.len() <= dev.len(),
        "more power maps ({}) than device layers ({})",
        layer_powers.len(),
        dev.len()
    );
    for lp in layer_powers {
        assert_eq!(
            lp.power_w.len(),
            lp.floorplan.blocks.len(),
            "power map must align with floorplan blocks"
        );
    }

    // The chip footprint: use the largest powered floorplan.
    let width = layer_powers
        .iter()
        .map(|l| l.floorplan.width_m)
        .fold(0.0, f64::max);
    let height = layer_powers
        .iter()
        .map(|l| l.floorplan.height_m)
        .fold(0.0, f64::max);
    let (nx, ny) = (cfg.nx, cfg.ny);
    let (dx, dy) = (width / nx as f64, height / ny as f64);
    let cell_area = dx * dy;
    let nl = stack.layers.len();
    let n_cells = nx * ny;

    // Per-cell injected power for each stack layer.
    let mut power = vec![vec![0.0f64; n_cells]; nl];
    for (li, lp) in layer_powers.iter().enumerate() {
        let l = dev[li];
        let fp = &lp.floorplan;
        // Count cells per block first so each block's power is conserved.
        let mut cells_in_block = vec![0usize; fp.blocks.len()];
        let mut cell_block = vec![usize::MAX; n_cells];
        for j in 0..ny {
            for i in 0..nx {
                let x = (i as f64 + 0.5) * dx * (fp.width_m / width);
                let y = (j as f64 + 0.5) * dy * (fp.height_m / height);
                if let Some(bi) = fp.blocks.iter().position(|b| b.contains(x, y)) {
                    cells_in_block[bi] += 1;
                    cell_block[j * nx + i] = bi;
                }
            }
        }
        for (c, &bi) in cell_block.iter().enumerate() {
            if bi != usize::MAX && cells_in_block[bi] > 0 {
                power[l][c] += lp.power_w[bi] / cells_in_block[bi] as f64;
            }
        }
    }

    // Conductances.
    let lat_gx: Vec<f64> = stack
        .layers
        .iter()
        .map(|l| l.conductivity_w_mk * (l.thickness_m * dy) / dx)
        .collect();
    let lat_gy: Vec<f64> = stack
        .layers
        .iter()
        .map(|l| l.conductivity_w_mk * (l.thickness_m * dx) / dy)
        .collect();
    let vert_g: Vec<f64> = (0..nl.saturating_sub(1))
        .map(|l| {
            let a = &stack.layers[l];
            let b = &stack.layers[l + 1];
            let r = a.thickness_m / (2.0 * a.conductivity_w_mk)
                + b.thickness_m / (2.0 * b.conductivity_w_mk);
            cell_area / r
        })
        .collect();
    // Sink-to-ambient conductance per cell.
    let g_amb = 1.0 / (cfg.convection_k_per_w * n_cells as f64);

    // SOR sweep.
    let mut t = vec![vec![cfg.ambient_c; n_cells]; nl];
    let mut iterations = 0;
    for it in 0..cfg.max_iters {
        iterations = it + 1;
        let mut max_delta = 0.0f64;
        for l in 0..nl {
            for j in 0..ny {
                for i in 0..nx {
                    let c = j * nx + i;
                    let mut num = power[l][c];
                    let mut den = 0.0;
                    if i > 0 {
                        num += lat_gx[l] * t[l][c - 1];
                        den += lat_gx[l];
                    }
                    if i + 1 < nx {
                        num += lat_gx[l] * t[l][c + 1];
                        den += lat_gx[l];
                    }
                    if j > 0 {
                        num += lat_gy[l] * t[l][c - nx];
                        den += lat_gy[l];
                    }
                    if j + 1 < ny {
                        num += lat_gy[l] * t[l][c + nx];
                        den += lat_gy[l];
                    }
                    if l > 0 {
                        num += vert_g[l - 1] * t[l - 1][c];
                        den += vert_g[l - 1];
                    }
                    if l + 1 < nl {
                        num += vert_g[l] * t[l + 1][c];
                        den += vert_g[l];
                    }
                    if l == 0 {
                        num += g_amb * cfg.ambient_c;
                        den += g_amb;
                    }
                    let new = t[l][c] + cfg.sor_omega * (num / den - t[l][c]);
                    max_delta = max_delta.max((new - t[l][c]).abs());
                    t[l][c] = new;
                }
            }
        }
        if max_delta < cfg.tolerance_k {
            break;
        }
    }

    // Peaks.
    let mut peak = cfg.ambient_c;
    for &l in &dev {
        for &v in &t[l] {
            peak = peak.max(v);
        }
    }
    let mut block_peaks: Vec<(String, f64)> = Vec::new();
    for (li, lp) in layer_powers.iter().enumerate() {
        let l = dev[li];
        let fp = &lp.floorplan;
        for j in 0..ny {
            for i in 0..nx {
                let x = (i as f64 + 0.5) * dx * (fp.width_m / width);
                let y = (j as f64 + 0.5) * dy * (fp.height_m / height);
                if let Some(b) = fp.block_at(x, y) {
                    let v = t[l][j * nx + i];
                    match block_peaks.iter_mut().find(|(n, _)| *n == b.name) {
                        Some((_, pk)) => *pk = pk.max(v),
                        None => block_peaks.push((b.name.clone(), v)),
                    }
                }
            }
        }
    }

    Solution {
        layer_temps_c: t,
        peak_c: peak,
        block_peaks_c: block_peaks,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;

    fn cfg() -> ThermalConfig {
        ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        }
    }

    fn planar_at(total_w: f64) -> Solution {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = fp.uniform_power(total_w);
        solve(
            &LayerStack::planar_2d(),
            &[LayerPower {
                floorplan: fp,
                power_w: p,
            }],
            &cfg(),
        )
    }

    #[test]
    fn planar_core_reaches_plausible_temperature() {
        // 6.4 W core (the paper's measured average) should sit well below
        // Tjmax but clearly above ambient.
        let s = planar_at(6.4);
        assert!(s.peak_c > 48.0 && s.peak_c < 100.0, "peak {}", s.peak_c);
    }

    #[test]
    fn temperature_monotonic_in_power() {
        let lo = planar_at(3.0).peak_c;
        let hi = planar_at(10.0).peak_c;
        assert!(hi > lo + 2.0, "lo {lo} hi {hi}");
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = vec![0.0; fp.blocks.len()];
        let s = solve(
            &LayerStack::planar_2d(),
            &[LayerPower {
                floorplan: fp,
                power_w: p,
            }],
            &cfg(),
        );
        assert!((s.peak_c - cfg().ambient_c).abs() < 0.01);
    }

    #[test]
    fn hot_block_is_hottest() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = fp.power_from_named(&[("IQ", 4.0), ("FPU", 0.5)]);
        let s = solve(
            &LayerStack::planar_2d(),
            &[LayerPower {
                floorplan: fp,
                power_w: p,
            }],
            &cfg(),
        );
        let (name, _) = s.hottest_block().expect("blocks exist");
        assert_eq!(name, "IQ");
    }

    #[test]
    fn tsv3d_far_layer_runs_hotter_than_m3d() {
        // The paper's headline thermal result: same split power, the TSV3D
        // stack's far-from-sink layer gets much hotter than M3D's.
        let full = Floorplan::ryzen_like(9.0e-6);
        let folded = full.scaled(0.5);
        let per_layer = folded.uniform_power(3.2);
        let layers = [
            LayerPower {
                floorplan: folded.clone(),
                power_w: per_layer.clone(),
            },
            LayerPower {
                floorplan: folded.clone(),
                power_w: per_layer.clone(),
            },
        ];
        let m3d = solve(&LayerStack::m3d(), &layers, &cfg());
        let tsv = solve(&LayerStack::tsv3d(), &layers, &cfg());
        assert!(
            tsv.peak_c > m3d.peak_c + 3.0,
            "tsv {} vs m3d {}",
            tsv.peak_c,
            m3d.peak_c
        );
    }

    #[test]
    fn m3d_layers_are_thermally_coupled() {
        // Power only the far (top-fabricated) layer: in M3D the near layer
        // tracks it closely because the ILD is 100 nm thin.
        let folded = Floorplan::ryzen_like(4.5e-6);
        let hot = folded.uniform_power(6.4);
        let cold = vec![0.0; folded.blocks.len()];
        let layers = [
            LayerPower {
                floorplan: folded.clone(),
                power_w: cold,
            },
            LayerPower {
                floorplan: folded.clone(),
                power_w: hot,
            },
        ];
        let s = solve(&LayerStack::m3d(), &layers, &cfg());
        let dev = LayerStack::m3d().device_layer_indices();
        let near_max = s.layer_temps_c[dev[0]]
            .iter()
            .copied()
            .fold(f64::MIN, f64::max);
        let far_max = s.layer_temps_c[dev[1]]
            .iter()
            .copied()
            .fold(f64::MIN, f64::max);
        assert!(
            (far_max - near_max) < 2.0,
            "near {near_max} vs far {far_max}"
        );
    }

    #[test]
    fn solver_converges() {
        let s = planar_at(6.4);
        assert!(s.iterations < cfg().max_iters, "did not converge");
    }

    #[test]
    #[should_panic(expected = "need at least one powered layer")]
    fn rejects_empty_power() {
        let _ = solve(&LayerStack::planar_2d(), &[], &cfg());
    }

    #[test]
    #[should_panic(expected = "more power maps")]
    fn rejects_too_many_layers() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = fp.uniform_power(1.0);
        let lp = LayerPower {
            floorplan: fp,
            power_w: p,
        };
        let _ = solve(&LayerStack::planar_2d(), &[lp.clone(), lp], &cfg());
    }
}
