//! One-shot steady-state entry point (the HotSpot grid model).
//!
//! Each material layer of the stack becomes one grid layer of `nx × ny`
//! cells. Conductances:
//!
//! * lateral, within a layer: `g = k · (t · dy) / dx` between side-adjacent
//!   cells;
//! * vertical, between layers: series combination of each layer's half
//!   thickness, `g = A / (t₁/(2k₁) + t₂/(2k₂))`;
//! * sink-to-ambient: the stack's first layer connects to ambient through
//!   the convection resistance, distributed over its cells.
//!
//! Power is injected in device-layer cells from the floorplan power maps.
//! The steady state is found by red–black successive over-relaxation,
//! iterating `T += ω·((Σ g·T_neighbour + P) / Σ g − T)`.
//!
//! [`solve`] is a convenience wrapper over [`crate::model::ThermalModel`]:
//! it fetches the assembled model from the process-wide
//! [`crate::model::shared_cache`] (so repeat calls for the same design skip
//! assembly) and runs one cold-start solve. Callers that solve many power
//! vectors against one design, need warm starts, or want
//! [`crate::model::SolveStats`] should hold a `ThermalModel` directly.

use crate::floorplan::Floorplan;
use crate::model::{shared_cache, SolveStats, ThermalError};
use m3d_tech::layers::{LayerStack, HEAT_SINK_TO_AMBIENT_K_PER_W};

/// Power injected into one device layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPower {
    /// The layer's floorplan (sets the chip footprint for that layer).
    pub floorplan: Floorplan,
    /// Per-block power, watts, aligned with `floorplan.blocks`.
    pub power_w: Vec<f64>,
}

impl LayerPower {
    /// Total power of this layer, watts.
    pub fn total_w(&self) -> f64 {
        self.power_w.iter().sum()
    }
}

/// Solver configuration.
///
/// All fields have physically meaningful ranges, checked by [`validate`]
/// (strict, used by [`crate::model::ThermalModel::new`]) or coerced by
/// [`sanitized`] (clamping, used by the panic-free paths). In particular
/// `sor_omega` outside `(0, 2)` makes SOR diverge and `tolerance_k ≤ 0`
/// never converges — neither failure mode is silent any more.
///
/// [`validate`]: ThermalConfig::validate
/// [`sanitized`]: ThermalConfig::sanitized
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalConfig {
    /// Grid cells along x. Must be ≥ 2: a single column has no lateral
    /// spreading and badly misrepresents hot spots.
    pub nx: usize,
    /// Grid cells along y. Must be ≥ 2.
    pub ny: usize,
    /// Ambient temperature, °C. Must be finite.
    pub ambient_c: f64,
    /// Heat-sink-to-ambient convection resistance, K/W. Must be finite and
    /// positive (a zero resistance shorts the stack to ambient and divides
    /// by zero in the per-cell conductance).
    pub convection_k_per_w: f64,
    /// SOR relaxation factor. Must lie in the open interval `(0, 2)`:
    /// 1.0 is plain Gauss–Seidel, values in `(1, 2)` over-relax and
    /// converge faster, and ω ≥ 2 provably diverges.
    pub sor_omega: f64,
    /// Convergence threshold on the max per-sweep update, K. Must be finite
    /// and > 0, otherwise the sweep can never terminate early.
    pub tolerance_k: f64,
    /// Iteration cap. Must be ≥ 1.
    pub max_iters: usize,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        Self {
            nx: 24,
            ny: 24,
            ambient_c: 45.0,
            convection_k_per_w: HEAT_SINK_TO_AMBIENT_K_PER_W,
            sor_omega: 1.6,
            tolerance_k: 1e-4,
            max_iters: 20_000,
        }
    }
}

impl ThermalConfig {
    /// Check every field against its documented range.
    ///
    /// Returns [`ThermalError::InvalidConfig`] naming the first offending
    /// field. [`crate::model::ThermalModel::new`] calls this, so invalid
    /// configurations fail fast instead of silently diverging.
    pub fn validate(&self) -> Result<(), ThermalError> {
        let fail = |msg: String| Err(ThermalError::InvalidConfig(msg));
        if self.nx < 2 || self.ny < 2 {
            return fail(format!("grid {}x{} too small (need nx, ny >= 2)", self.nx, self.ny));
        }
        if !self.ambient_c.is_finite() {
            return fail(format!("ambient_c = {} must be finite", self.ambient_c));
        }
        if !(self.convection_k_per_w.is_finite() && self.convection_k_per_w > 0.0) {
            return fail(format!(
                "convection_k_per_w = {} must be finite and > 0",
                self.convection_k_per_w
            ));
        }
        if !(self.sor_omega > 0.0 && self.sor_omega < 2.0) {
            return fail(format!(
                "sor_omega = {} outside (0, 2): SOR diverges",
                self.sor_omega
            ));
        }
        if !(self.tolerance_k.is_finite() && self.tolerance_k > 0.0) {
            return fail(format!(
                "tolerance_k = {} must be finite and > 0",
                self.tolerance_k
            ));
        }
        if self.max_iters == 0 {
            return fail("max_iters = 0 (need at least one sweep)".to_owned());
        }
        Ok(())
    }

    /// A copy with every out-of-range field clamped into its valid range
    /// (defaults are used where no meaningful clamp exists, e.g. a
    /// non-finite `ambient_c`). Used by the panic-free [`solve`] path so
    /// historical callers with sloppy configs degrade gracefully instead
    /// of looping forever.
    pub fn sanitized(&self) -> Self {
        let d = Self::default();
        Self {
            nx: self.nx.max(2),
            ny: self.ny.max(2),
            ambient_c: if self.ambient_c.is_finite() {
                self.ambient_c
            } else {
                d.ambient_c
            },
            convection_k_per_w: if self.convection_k_per_w.is_finite()
                && self.convection_k_per_w > 0.0
            {
                self.convection_k_per_w
            } else {
                d.convection_k_per_w
            },
            sor_omega: if self.sor_omega > 0.0 && self.sor_omega < 2.0 {
                self.sor_omega
            } else {
                self.sor_omega.clamp(0.1, 1.95)
            },
            tolerance_k: if self.tolerance_k.is_finite() && self.tolerance_k > 0.0 {
                self.tolerance_k
            } else {
                d.tolerance_k
            },
            max_iters: self.max_iters.max(1),
        }
    }
}

/// Steady-state solution.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Temperatures per stack layer, each `nx × ny` row-major, °C.
    pub layer_temps_c: Vec<Vec<f64>>,
    /// Peak temperature anywhere in a device layer, °C.
    pub peak_c: f64,
    /// Peak temperature per block name (max over device layers), °C.
    pub block_peaks_c: Vec<(String, f64)>,
    /// Iterations used.
    pub iterations: usize,
}

impl Solution {
    /// Peak temperature of a named block, if present.
    pub fn block_peak_c(&self, name: &str) -> Option<f64> {
        self.block_peaks_c
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, t)| *t)
    }

    /// The hottest block.
    pub fn hottest_block(&self) -> Option<(&str, f64)> {
        self.block_peaks_c
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("temps are finite"))
            .map(|(n, t)| (n.as_str(), *t))
    }
}

/// Solve the steady-state temperature field.
///
/// `layer_powers` are assigned to the stack's device layers in stack order
/// (sink-first); extra device layers (if any) receive no power.
///
/// This is a thin wrapper over [`crate::model::ThermalModel`]: the
/// assembled model comes from the process-wide shared cache, the config is
/// [`ThermalConfig::sanitized`], and the solve starts cold. Use the model
/// API directly for warm starts and [`SolveStats`].
///
/// # Panics
///
/// Panics if `layer_powers` is empty or exceeds the number of device layers,
/// or if a power map length mismatches its floorplan.
pub fn solve(stack: &LayerStack, layer_powers: &[LayerPower], cfg: &ThermalConfig) -> Solution {
    solve_with_stats(stack, layer_powers, cfg).0
}

/// Like [`solve`] but also returns the per-solve [`SolveStats`]
/// (iterations, residual, cache hit, wall time).
///
/// # Panics
///
/// Same conditions as [`solve`].
pub fn solve_with_stats(
    stack: &LayerStack,
    layer_powers: &[LayerPower],
    cfg: &ThermalConfig,
) -> (Solution, SolveStats) {
    assert!(!layer_powers.is_empty(), "need at least one powered layer");
    let dev = stack.device_layer_indices();
    assert!(
        layer_powers.len() <= dev.len(),
        "more power maps ({}) than device layers ({})",
        layer_powers.len(),
        dev.len()
    );
    for lp in layer_powers {
        assert_eq!(
            lp.power_w.len(),
            lp.floorplan.blocks.len(),
            "power map must align with floorplan blocks"
        );
    }

    let floorplans: Vec<Floorplan> = layer_powers.iter().map(|l| l.floorplan.clone()).collect();
    let powers: Vec<Vec<f64>> = layer_powers.iter().map(|l| l.power_w.clone()).collect();
    let cfg = cfg.sanitized();
    let (model, cache_hit) = shared_cache()
        .get_or_build(stack, &floorplans, &cfg)
        .expect("sanitized config and validated inputs must assemble");
    let (solution, mut stats) = model
        .solve(&powers)
        .expect("power vectors validated against floorplans above");
    stats.assembly_cache_hit = cache_hit;
    (solution, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;

    fn cfg() -> ThermalConfig {
        ThermalConfig {
            nx: 16,
            ny: 16,
            ..ThermalConfig::default()
        }
    }

    fn planar_at(total_w: f64) -> Solution {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = fp.uniform_power(total_w);
        solve(
            &LayerStack::planar_2d(),
            &[LayerPower {
                floorplan: fp,
                power_w: p,
            }],
            &cfg(),
        )
    }

    #[test]
    fn planar_core_reaches_plausible_temperature() {
        // 6.4 W core (the paper's measured average) should sit well below
        // Tjmax but clearly above ambient.
        let s = planar_at(6.4);
        assert!(s.peak_c > 48.0 && s.peak_c < 100.0, "peak {}", s.peak_c);
    }

    #[test]
    fn temperature_monotonic_in_power() {
        let lo = planar_at(3.0).peak_c;
        let hi = planar_at(10.0).peak_c;
        assert!(hi > lo + 2.0, "lo {lo} hi {hi}");
    }

    #[test]
    fn zero_power_stays_at_ambient() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = vec![0.0; fp.blocks.len()];
        let s = solve(
            &LayerStack::planar_2d(),
            &[LayerPower {
                floorplan: fp,
                power_w: p,
            }],
            &cfg(),
        );
        assert!((s.peak_c - cfg().ambient_c).abs() < 0.01);
    }

    #[test]
    fn hot_block_is_hottest() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = fp.power_from_named(&[("IQ", 4.0), ("FPU", 0.5)]);
        let s = solve(
            &LayerStack::planar_2d(),
            &[LayerPower {
                floorplan: fp,
                power_w: p,
            }],
            &cfg(),
        );
        let (name, _) = s.hottest_block().expect("blocks exist");
        assert_eq!(name, "IQ");
    }

    #[test]
    fn tsv3d_far_layer_runs_hotter_than_m3d() {
        // The paper's headline thermal result: same split power, the TSV3D
        // stack's far-from-sink layer gets much hotter than M3D's.
        let full = Floorplan::ryzen_like(9.0e-6);
        let folded = full.scaled(0.5);
        let per_layer = folded.uniform_power(3.2);
        let layers = [
            LayerPower {
                floorplan: folded.clone(),
                power_w: per_layer.clone(),
            },
            LayerPower {
                floorplan: folded.clone(),
                power_w: per_layer.clone(),
            },
        ];
        let m3d = solve(&LayerStack::m3d(), &layers, &cfg());
        let tsv = solve(&LayerStack::tsv3d(), &layers, &cfg());
        assert!(
            tsv.peak_c > m3d.peak_c + 3.0,
            "tsv {} vs m3d {}",
            tsv.peak_c,
            m3d.peak_c
        );
    }

    #[test]
    fn m3d_layers_are_thermally_coupled() {
        // Power only the far (top-fabricated) layer: in M3D the near layer
        // tracks it closely because the ILD is 100 nm thin.
        let folded = Floorplan::ryzen_like(4.5e-6);
        let hot = folded.uniform_power(6.4);
        let cold = vec![0.0; folded.blocks.len()];
        let layers = [
            LayerPower {
                floorplan: folded.clone(),
                power_w: cold,
            },
            LayerPower {
                floorplan: folded.clone(),
                power_w: hot,
            },
        ];
        let s = solve(&LayerStack::m3d(), &layers, &cfg());
        let dev = LayerStack::m3d().device_layer_indices();
        let near_max = s.layer_temps_c[dev[0]]
            .iter()
            .copied()
            .fold(f64::MIN, f64::max);
        let far_max = s.layer_temps_c[dev[1]]
            .iter()
            .copied()
            .fold(f64::MIN, f64::max);
        assert!(
            (far_max - near_max) < 2.0,
            "near {near_max} vs far {far_max}"
        );
    }

    #[test]
    fn solver_converges() {
        let s = planar_at(6.4);
        assert!(s.iterations < cfg().max_iters, "did not converge");
    }

    #[test]
    fn repeat_solves_hit_the_model_cache() {
        let cache = crate::model::shared_cache();
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = fp.uniform_power(5.0);
        let lp = [LayerPower {
            floorplan: fp,
            power_w: p,
        }];
        // Unusual grid so no other test shares the cache entry.
        let cfg = ThermalConfig {
            nx: 17,
            ny: 13,
            ..ThermalConfig::default()
        };
        let (_, first) = solve_with_stats(&LayerStack::planar_2d(), &lp, &cfg);
        let before = cache.hits();
        let (_, second) = solve_with_stats(&LayerStack::planar_2d(), &lp, &cfg);
        assert!(!first.assembly_cache_hit || before > 0);
        assert!(second.assembly_cache_hit, "second solve must reuse the model");
        assert!(cache.hits() > before);
    }

    #[test]
    fn sanitized_clamps_bad_fields_and_keeps_good_ones() {
        let bad = ThermalConfig {
            nx: 0,
            ny: 1,
            ambient_c: f64::NAN,
            convection_k_per_w: -2.0,
            sor_omega: 3.7,
            tolerance_k: 0.0,
            max_iters: 0,
        };
        let s = bad.sanitized();
        assert!(s.validate().is_ok(), "sanitized must validate: {s:?}");
        let good = cfg();
        assert_eq!(good.sanitized(), good, "valid configs pass through unchanged");
    }

    #[test]
    fn wrapper_survives_divergent_omega() {
        // Historical callers could pass sor_omega >= 2 and silently diverge;
        // the wrapper now clamps and still produces a finite field.
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = fp.uniform_power(6.4);
        let s = solve(
            &LayerStack::planar_2d(),
            &[LayerPower {
                floorplan: fp,
                power_w: p,
            }],
            &ThermalConfig {
                sor_omega: 2.8,
                ..cfg()
            },
        );
        assert!(s.peak_c.is_finite() && s.peak_c > 45.0 && s.peak_c < 150.0);
    }

    #[test]
    #[should_panic(expected = "need at least one powered layer")]
    fn rejects_empty_power() {
        let _ = solve(&LayerStack::planar_2d(), &[], &cfg());
    }

    #[test]
    #[should_panic(expected = "more power maps")]
    fn rejects_too_many_layers() {
        let fp = Floorplan::ryzen_like(9.0e-6);
        let p = fp.uniform_power(1.0);
        let lp = LayerPower {
            floorplan: fp,
            power_w: p,
        };
        let _ = solve(&LayerStack::planar_2d(), &[lp.clone(), lp], &cfg());
    }
}
