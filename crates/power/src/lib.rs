//! McPAT-style power and energy model (paper Section 6).
//!
//! Converts the cycle-level simulator's activity counters into energy, using
//! per-access array energies from the CACTI-like `m3d-sram` model, logic
//! per-op energies, a clock-tree power model, and leakage. The 3D design
//! knobs follow the paper's methodology exactly:
//!
//! * array energies scale by the per-structure reductions of Tables 6/8;
//! * logic switching power scales by the factor measured on the laid-out
//!   ALU + bypass circuit (~0.9);
//! * clock-tree switching power scales by a constant 0.75;
//! * leakage power is left unchanged (energy still falls because 3D designs
//!   finish earlier);
//! * voltage scaling (M3D-Het-2X at 0.75 V) scales dynamic energy by `V²`
//!   with the frequency/voltage curve of [`dvfs`].
//!
//! # Example
//!
//! ```
//! use m3d_power::model::{CorePowerModel, PowerConfig};
//!
//! let model = CorePowerModel::new_22nm();
//! let base = PowerConfig::planar_2d(3.3);
//! // A typical Base-core interval: ~2e9 µops/s at 6-ish watts.
//! # let _ = (model, base);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dvfs;
pub mod energies;
pub mod model;

pub use dvfs::VfCurve;
pub use energies::StructureEnergies;
pub use model::{CorePowerModel, EnergyBreakdown, PowerConfig};
