//! Voltage–frequency scaling (paper Section 6.1, M3D-Het-2X).
//!
//! The paper lowers a 3.79 GHz M3D-Het core to the 2D baseline's 3.3 GHz and
//! converts the slack into a 50 mV supply reduction (0.8 V → 0.75 V),
//! "following curves from the literature" (ScalCore, the 280 mV-to-1.2 V
//! IA-32 part). We use the classic alpha-power law, `f ∝ (V − Vt)^α / V`,
//! calibrated so that exactly that design point holds.

/// Alpha-power-law voltage–frequency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VfCurve {
    /// Threshold voltage, volts.
    pub vt: f64,
    /// Velocity-saturation exponent.
    pub alpha: f64,
    /// Reference frequency (GHz) at the reference voltage.
    pub f_ref_ghz: f64,
    /// Reference voltage, volts.
    pub v_ref: f64,
}

impl VfCurve {
    /// The 22 nm curve used throughout: 0.8 V nominal, Vt ≈ 0.35 V,
    /// α ≈ 1.75 — chosen so a 3.79 GHz design reaches 3.3 GHz at ≈0.75 V,
    /// the paper's M3D-Het-2X operating point.
    pub fn n22(f_ref_ghz: f64) -> Self {
        Self {
            vt: 0.35,
            alpha: 1.75,
            f_ref_ghz,
            v_ref: 0.8,
        }
    }

    /// Maximum frequency at supply `v`, GHz.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not above the threshold voltage.
    pub fn frequency_at(&self, v: f64) -> f64 {
        assert!(v > self.vt, "supply {v} V must exceed Vt {} V", self.vt);
        let shape = |v: f64| (v - self.vt).powf(self.alpha) / v;
        self.f_ref_ghz * shape(v) / shape(self.v_ref)
    }

    /// Minimum supply voltage that sustains `f_ghz`, volts (bisection).
    ///
    /// # Panics
    ///
    /// Panics if `f_ghz` exceeds the curve's frequency at 1.2 V.
    pub fn voltage_for(&self, f_ghz: f64) -> f64 {
        let (mut lo, mut hi) = (self.vt + 1e-3, 1.2);
        assert!(
            f_ghz <= self.frequency_at(hi),
            "{f_ghz} GHz is beyond the curve"
        );
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.frequency_at(mid) < f_ghz {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_point_holds() {
        // M3D-Het at 3.79 GHz slowed to 3.3 GHz should allow ≈0.75 V.
        let curve = VfCurve::n22(3.79);
        let v = curve.voltage_for(3.3);
        assert!((v - 0.75).abs() < 0.01, "v = {v}");
    }

    #[test]
    fn frequency_monotonic_in_voltage() {
        let c = VfCurve::n22(3.3);
        assert!(c.frequency_at(0.9) > c.frequency_at(0.8));
        assert!(c.frequency_at(0.8) > c.frequency_at(0.7));
    }

    #[test]
    fn reference_point_round_trips() {
        let c = VfCurve::n22(3.3);
        assert!((c.frequency_at(0.8) - 3.3).abs() < 1e-9);
        assert!((c.voltage_for(3.3) - 0.8).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "must exceed Vt")]
    fn rejects_subthreshold() {
        let _ = VfCurve::n22(3.3).frequency_at(0.3);
    }
}
