//! Per-event energies: array accesses (from the CACTI-like model) and logic
//! operations.

use m3d_sram::model2d::analyze_2d;
use m3d_sram::structures::StructureId;
use m3d_tech::node::TechnologyNode;
use m3d_tech::process::ProcessCorner;

/// Multiplier applied to the raw array energies to account for the
/// structure's control logic, muxing, and routing that the array model does
/// not capture (McPAT's structures carry similar overheads). Small latches
/// and register-class arrays are dominated by that overhead; large cache
/// arrays are not, so the factor shrinks with capacity.
fn array_overhead(capacity_bits: usize) -> f64 {
    if capacity_bits > 1 << 20 {
        2.5
    } else if capacity_bits > 100 << 10 {
        6.0
    } else {
        20.0
    }
}

/// Per-op energy of the pipeline's distributed logic (rename/control/bypass
/// wires and muxes), joules at 0.8 V / 22 nm. Calibrated so a Base core at
/// 3.3 GHz averages ≈6.4 W (the paper's measured per-core average).
pub const PIPELINE_LOGIC_J: f64 = 0.25e-9;

/// Per-operation energies of the functional units, joules at 0.8 V / 22 nm.
pub const ALU_OP_J: f64 = 8.0e-12;
/// Integer multiply/divide energy.
pub const MUL_OP_J: f64 = 25.0e-12;
/// Floating-point operation energy (double-precision FMA class).
pub const FPU_OP_J: f64 = 100.0e-12;
/// DRAM access energy (row + I/O), joules.
pub const DRAM_ACCESS_J: f64 = 15.0e-9;
/// NoC energy per flit-hop, joules.
pub const NOC_HOP_J: f64 = 60.0e-12;

/// Per-access energies for each core storage structure.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureEnergies {
    values: Vec<(StructureId, f64)>,
}

impl StructureEnergies {
    /// Baseline 2D energies computed from the CACTI-like model at `node`.
    pub fn planar_2d(node: &TechnologyNode) -> Self {
        let values = StructureId::ALL
            .iter()
            .map(|&id| {
                let spec = id.spec();
                let a = analyze_2d(&spec, node, ProcessCorner::bulk_hp());
                (id, a.metrics.energy_j * array_overhead(spec.capacity_bits()))
            })
            .collect();
        Self { values }
    }

    /// Energy per access of a structure, joules.
    ///
    /// # Panics
    ///
    /// Panics if the structure is unknown (cannot happen for
    /// [`StructureId::ALL`] members).
    pub fn of(&self, id: StructureId) -> f64 {
        self.values
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, e)| *e)
            .unwrap_or_else(|| panic!("unknown structure {id}"))
    }

    /// Scale each structure's energy by `1 - reduction`, where `reductions`
    /// holds per-structure *percentage* energy reductions (the paper's Table
    /// 6/8 numbers). Structures not listed keep their baseline energy.
    pub fn with_reductions(mut self, reductions: &[(StructureId, f64)]) -> Self {
        for (id, pct) in reductions {
            if let Some(v) = self.values.iter_mut().find(|(i, _)| i == id) {
                v.1 *= 1.0 - pct / 100.0;
            }
        }
        self
    }

    /// Iterate `(structure, energy_j)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StructureId, f64)> + '_ {
        self.values.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> StructureEnergies {
        StructureEnergies::planar_2d(&TechnologyNode::n22())
    }

    #[test]
    fn covers_all_structures() {
        let e = base();
        for id in StructureId::ALL {
            assert!(e.of(id) > 0.0, "{id} energy must be positive");
        }
    }

    #[test]
    fn big_arrays_cost_more() {
        let e = base();
        assert!(e.of(StructureId::L2) > e.of(StructureId::Dl1));
        assert!(e.of(StructureId::Dl1) > e.of(StructureId::Rat));
    }

    #[test]
    fn reductions_apply_only_to_listed() {
        let e = base();
        let rf0 = e.of(StructureId::Rf);
        let l20 = e.of(StructureId::L2);
        let e2 = e.with_reductions(&[(StructureId::Rf, 38.0)]);
        assert!((e2.of(StructureId::Rf) - rf0 * 0.62).abs() < 1e-18);
        assert_eq!(e2.of(StructureId::L2), l20);
    }

    #[test]
    fn energies_are_picojoule_scale() {
        let e = base();
        for (id, j) in e.iter() {
            assert!(j > 0.01e-12 && j < 1e-9, "{id}: {j} J out of range");
        }
    }
}
