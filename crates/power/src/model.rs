//! The core power/energy model: activity counters × per-event energies,
//! plus clock tree and leakage.

use crate::energies::{
    StructureEnergies, ALU_OP_J, DRAM_ACCESS_J, FPU_OP_J, MUL_OP_J, NOC_HOP_J, PIPELINE_LOGIC_J,
};
use m3d_sram::structures::StructureId;
use m3d_tech::node::TechnologyNode;
use m3d_uarch::stats::PerfResult;

/// Clock-tree dynamic power of one 2D core at the nominal 0.8 V / 3.3 GHz
/// point, watts. The tree's switching power scales with `f · V²` and, in
/// 3D, by the paper's constant 0.75 factor.
pub const CLOCK_TREE_W_NOMINAL: f64 = 1.7;
/// Leakage power of one 2D core at 0.8 V, watts.
pub const LEAKAGE_W_NOMINAL: f64 = 0.9;
/// Nominal supply for the reference energies, volts.
pub const VDD_NOMINAL: f64 = 0.8;
/// Nominal frequency for the clock-power reference, GHz.
pub const FREQ_NOMINAL_GHZ: f64 = 3.3;

/// Design-dependent scaling knobs for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerConfig {
    /// Clock frequency, GHz.
    pub freq_ghz: f64,
    /// Supply voltage, volts.
    pub vdd: f64,
    /// Per-structure energy reductions in percent (Tables 6/8); empty for 2D.
    pub array_reductions: Vec<(StructureId, f64)>,
    /// Scale on functional-unit switching energy (0.9 in 3D, per the
    /// laid-out ALU circuit measurement).
    pub logic_scale: f64,
    /// Scale on the distributed pipeline-overhead energy (control, bypass
    /// and rename wiring). This component is wire-dominated, so folding the
    /// footprint cuts it hard: 0.65 in 3D.
    pub pipeline_scale: f64,
    /// Scale on clock-tree switching power (0.75 in 3D).
    pub clock_scale: f64,
    /// Scale on leakage power (1.0: the paper keeps leakage unchanged).
    pub leakage_scale: f64,
    /// Number of cores the result's counters cover.
    pub n_cores: usize,
}

impl PowerConfig {
    /// The 2D baseline at a given frequency.
    pub fn planar_2d(freq_ghz: f64) -> Self {
        Self {
            freq_ghz,
            vdd: VDD_NOMINAL,
            array_reductions: Vec::new(),
            logic_scale: 1.0,
            pipeline_scale: 1.0,
            clock_scale: 1.0,
            leakage_scale: 1.0,
            n_cores: 1,
        }
    }

    /// A 3D configuration: per-structure array reductions plus the paper's
    /// logic (×0.9) and clock (×0.75) factors.
    pub fn three_d(freq_ghz: f64, array_reductions: Vec<(StructureId, f64)>) -> Self {
        Self {
            freq_ghz,
            vdd: VDD_NOMINAL,
            array_reductions,
            logic_scale: 0.9,
            pipeline_scale: 0.65,
            clock_scale: 0.75,
            leakage_scale: 1.0,
            n_cores: 1,
        }
    }

    /// Override the supply voltage (M3D-Het-2X uses 0.75 V).
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        assert!(vdd > 0.0, "voltage must be positive");
        self.vdd = vdd;
        self
    }

    /// Set the core count covered by the activity counters.
    pub fn with_cores(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one core");
        self.n_cores = n;
        self
    }

    fn v2_scale(&self) -> f64 {
        (self.vdd / VDD_NOMINAL).powi(2)
    }
}

/// Energy accounting for one simulated interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Array (SRAM/CAM structure) dynamic energy, joules.
    pub arrays_j: f64,
    /// Functional-unit and pipeline logic dynamic energy, joules.
    pub logic_j: f64,
    /// Clock-tree energy, joules.
    pub clock_j: f64,
    /// Leakage energy, joules.
    pub leakage_j: f64,
    /// NoC energy, joules.
    pub uncore_j: f64,
    /// Off-chip DRAM device energy, joules — reported separately and *not*
    /// part of [`EnergyBreakdown::total_j`], which covers the processor (the
    /// quantity the paper's Figure 7/10 normalise).
    pub dram_j: f64,
    /// Interval wall-clock time, seconds.
    pub time_s: f64,
}

impl EnergyBreakdown {
    /// Total energy, joules.
    pub fn total_j(&self) -> f64 {
        self.arrays_j + self.logic_j + self.clock_j + self.leakage_j + self.uncore_j
    }

    /// Average power over the interval, watts.
    pub fn average_power_w(&self) -> f64 {
        self.total_j() / self.time_s
    }
}

/// The power model: reference per-event energies at the nominal point.
#[derive(Debug, Clone, PartialEq)]
pub struct CorePowerModel {
    energies: StructureEnergies,
}

impl CorePowerModel {
    /// Build the model with 22 nm reference energies.
    pub fn new_22nm() -> Self {
        Self {
            energies: StructureEnergies::planar_2d(&TechnologyNode::n22()),
        }
    }

    /// Account the energy of a simulated interval under a configuration.
    pub fn energy(&self, r: &PerfResult, cfg: &PowerConfig) -> EnergyBreakdown {
        let _span = m3d_obs::span("power", "energy_accounting");
        m3d_obs::add("power.accountings", 1);
        let e = self.energies.clone().with_reductions(&cfg.array_reductions);
        let a = &r.activity;
        let v2 = cfg.v2_scale();
        let time = r.time_s();

        let [il1, dl1, l2, l3] = r.cache_levels;
        let mut arrays = 0.0;
        arrays += (a.rf_reads + a.rf_writes) as f64 * e.of(StructureId::Rf);
        arrays += (a.dispatched + a.iq_wakeups) as f64 * e.of(StructureId::Iq);
        arrays += (a.stores + a.sq_searches) as f64 * e.of(StructureId::Sq);
        arrays += (a.loads + a.lq_searches) as f64 * e.of(StructureId::Lq);
        arrays += (a.rat_reads + a.rat_writes) as f64 * e.of(StructureId::Rat);
        arrays += a.bpred_accesses as f64 * e.of(StructureId::Bpt);
        arrays += a.btb_accesses as f64 * e.of(StructureId::Btb);
        arrays += a.loads as f64 * e.of(StructureId::Dtlb);
        arrays += a.fetched as f64 / 4.0 * e.of(StructureId::Itlb);
        // One IL1 array access covers a fetch group.
        arrays += il1.0 as f64 / 2.0 * e.of(StructureId::Il1);
        arrays += dl1.0 as f64 * e.of(StructureId::Dl1);
        arrays += l2.0 as f64 * e.of(StructureId::L2);
        arrays += l3.0 as f64 * e.of(StructureId::L2); // L3 slice ≈ L2-class array
        arrays *= v2;

        let mut logic = a.dispatched as f64 * PIPELINE_LOGIC_J * cfg.pipeline_scale;
        logic += (a.alu_ops as f64 * ALU_OP_J
            + a.mul_ops as f64 * MUL_OP_J
            + a.fp_ops as f64 * FPU_OP_J)
            * cfg.logic_scale;
        logic *= v2;

        let clock_w = CLOCK_TREE_W_NOMINAL
            * cfg.n_cores as f64
            * cfg.clock_scale
            * (cfg.freq_ghz / FREQ_NOMINAL_GHZ)
            * v2;
        let clock = clock_w * time;

        let leak_w = LEAKAGE_W_NOMINAL
            * cfg.n_cores as f64
            * cfg.leakage_scale
            * (cfg.vdd / VDD_NOMINAL);
        let leakage = leak_w * time;

        let uncore = r.mem.noc_hops as f64 * NOC_HOP_J * v2;
        let dram = r.mem.dram_accesses as f64 * DRAM_ACCESS_J;

        EnergyBreakdown {
            arrays_j: arrays,
            logic_j: logic,
            clock_j: clock,
            leakage_j: leakage,
            uncore_j: uncore,
            dram_j: dram,
            time_s: time,
        }
    }

    /// Split a core's power across the Ryzen-like floorplan blocks for the
    /// thermal model (Figure 8). Returns `(block name, watts)` pairs.
    pub fn block_powers(&self, r: &PerfResult, cfg: &PowerConfig) -> Vec<(&'static str, f64)> {
        let b = self.energy(r, cfg);
        let t = b.time_s;
        let e = self.energies.clone().with_reductions(&cfg.array_reductions);
        let a = &r.activity;
        let v2 = cfg.v2_scale();
        let [il1, dl1, l2, _l3] = r.cache_levels;

        // Structure dynamic power, mapped onto blocks.
        let rf = (a.rf_reads + a.rf_writes) as f64 * e.of(StructureId::Rf) * v2 / t;
        let iq = (a.dispatched + a.iq_wakeups) as f64 * e.of(StructureId::Iq) * v2 / t;
        let lsu = ((a.stores + a.sq_searches) as f64 * e.of(StructureId::Sq)
            + (a.loads + a.lq_searches) as f64 * e.of(StructureId::Lq)
            + a.loads as f64 * e.of(StructureId::Dtlb)
            + dl1.0 as f64 * e.of(StructureId::Dl1))
            * v2
            / t;
        let fetch = (a.bpred_accesses as f64 * e.of(StructureId::Bpt)
            + a.btb_accesses as f64 * e.of(StructureId::Btb)
            + a.fetched as f64 / 4.0 * e.of(StructureId::Itlb))
            * v2
            / t;
        let il1_p = il1.0 as f64 / 2.0 * e.of(StructureId::Il1) * v2 / t;
        let rename = (a.rat_reads + a.rat_writes) as f64 * e.of(StructureId::Rat) * v2 / t;
        let l2_p = l2.0 as f64 * e.of(StructureId::L2) * v2 / t;
        let alu = (a.alu_ops as f64 * ALU_OP_J + a.mul_ops as f64 * MUL_OP_J)
            * cfg.logic_scale
            * v2
            / t;
        let fpu = a.fp_ops as f64 * FPU_OP_J * cfg.logic_scale * v2 / t;

        // The pipeline-overhead logic, clock tree and leakage spread over the
        // blocks by area share (matching the Ryzen-like floorplan).
        let spread = (b.logic_j / t - alu - fpu).max(0.0) + b.clock_j / t + b.leakage_j / t;
        let shares: [(&'static str, f64); 9] = [
            ("Fetch+BPU", 0.14),
            ("IL1", 0.08),
            ("Decode+Rename", 0.12),
            ("IQ", 0.07),
            ("RF", 0.05),
            ("ALU", 0.12),
            ("FPU", 0.18),
            ("LSU+DL1", 0.16),
            ("L2ctl", 0.08),
        ];
        shares
            .iter()
            .map(|&(name, share)| {
                let structural = match name {
                    "Fetch+BPU" => fetch,
                    "IL1" => il1_p,
                    "Decode+Rename" => rename,
                    "IQ" => iq,
                    "RF" => rf,
                    "ALU" => alu,
                    "FPU" => fpu,
                    "LSU+DL1" => lsu,
                    "L2ctl" => l2_p,
                    _ => 0.0,
                };
                (name, structural + spread * share)
            })
            .collect()
    }
}

impl Default for CorePowerModel {
    fn default() -> Self {
        Self::new_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_uarch::config::CoreConfig;
    use m3d_uarch::core::Core;
    use m3d_workloads::spec::spec_by_name;
    use m3d_workloads::TraceGenerator;

    fn run_base(name: &str) -> PerfResult {
        let p = spec_by_name(name).expect("profile");
        let gen = TraceGenerator::new(&p, 21, 0, 1);
        let mut core = Core::new(0, CoreConfig::base_2d(), gen);
        let _ = core.run(30_000);
        core.run(60_000)
    }

    #[test]
    fn base_core_power_is_several_watts() {
        // The paper measures 6.4 W average for the Base core (excluding
        // L2/L3); our calibration should land in the same range.
        let model = CorePowerModel::new_22nm();
        let r = run_base("Gamess");
        let b = model.energy(&r, &PowerConfig::planar_2d(3.3));
        let p = b.average_power_w();
        assert!(p > 3.0 && p < 11.0, "power {p} W");
    }

    #[test]
    fn three_d_reduces_energy() {
        let model = CorePowerModel::new_22nm();
        let r = run_base("Bzip2");
        let base = model.energy(&r, &PowerConfig::planar_2d(3.3));
        let reductions: Vec<_> = m3d_sram::structures::StructureId::ALL
            .iter()
            .map(|&id| (id, 35.0))
            .collect();
        let m3d = model.energy(&r, &PowerConfig::three_d(3.3, reductions));
        assert!(
            m3d.total_j() < 0.85 * base.total_j(),
            "3D {} vs 2D {}",
            m3d.total_j(),
            base.total_j()
        );
    }

    #[test]
    fn lower_voltage_cuts_dynamic_quadratically() {
        let model = CorePowerModel::new_22nm();
        let r = run_base("Lbm");
        let hi = model.energy(&r, &PowerConfig::planar_2d(3.3));
        let lo = model.energy(&r, &PowerConfig::planar_2d(3.3).with_vdd(0.75));
        let want = (0.75f64 / 0.8).powi(2);
        let got = lo.arrays_j / hi.arrays_j;
        assert!((got - want).abs() < 1e-9, "got {got} want {want}");
        assert!(lo.total_j() < hi.total_j());
    }

    #[test]
    fn faster_run_saves_clock_and_leakage_energy() {
        let model = CorePowerModel::new_22nm();
        let r = run_base("Hmmer");
        let mut faster = r;
        faster.cycles = (r.cycles as f64 / 1.2) as u64;
        let e_slow = model.energy(&r, &PowerConfig::planar_2d(3.3));
        let e_fast = model.energy(&faster, &PowerConfig::planar_2d(3.3));
        assert!(e_fast.leakage_j < e_slow.leakage_j);
        assert!(e_fast.clock_j < e_slow.clock_j);
        assert_eq!(e_fast.arrays_j, e_slow.arrays_j);
    }

    #[test]
    fn block_powers_sum_close_to_total() {
        let model = CorePowerModel::new_22nm();
        let r = run_base("Astar");
        let cfg = PowerConfig::planar_2d(3.3);
        let total = model.energy(&r, &cfg).average_power_w();
        let blocks = model.block_powers(&r, &cfg);
        let sum: f64 = blocks.iter().map(|(_, w)| w).sum();
        // Uncore (DRAM/NoC) is excluded from the block map.
        assert!(
            sum > 0.6 * total && sum <= total * 1.001,
            "blocks {sum} vs total {total}"
        );
    }

    #[test]
    fn hot_blocks_reflect_workload() {
        let model = CorePowerModel::new_22nm();
        let cfg = PowerConfig::planar_2d(3.3);
        let int_blocks = model.block_powers(&run_base("Sjeng"), &cfg);
        let fp_blocks = model.block_powers(&run_base("Namd"), &cfg);
        let get = |v: &Vec<(&str, f64)>, n: &str| {
            v.iter().find(|(b, _)| *b == n).map(|(_, w)| *w).unwrap()
        };
        // FP codes burn relatively more FPU power than integer codes.
        let fp_ratio = get(&fp_blocks, "FPU") / get(&fp_blocks, "ALU");
        let int_ratio = get(&int_blocks, "FPU") / get(&int_blocks, "ALU");
        assert!(fp_ratio > int_ratio, "fp {fp_ratio} vs int {int_ratio}");
    }
}
