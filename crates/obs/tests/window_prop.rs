//! Property test for [`WindowedHistogram`] epoch arithmetic across ring
//! wraparound.
//!
//! The unit tests in `crates/obs/src/window.rs` pin the ring's behaviour on
//! a few hand-picked tick sequences; this test hammers the same contract
//! across randomly drawn slab durations, ring sizes and monotonic tick
//! streams long enough to wrap the ring several times over. The reference
//! model is the documented semantics stated directly: each recorded sample
//! lands in the slab whose epoch is `now_us / slab_us`, a later epoch
//! mapping to the same ring position (`epoch % slabs`) evicts the earlier
//! occupant wholesale, and `merged(name, now, window)` folds exactly the
//! surviving slabs whose epoch lies in
//! `[(now - window)/slab_us, now/slab_us]`. Cases come from the vendored
//! offline proptest shim, whose seeds are fixed per test name, so a failure
//! reproduces exactly on every machine.

use std::collections::HashMap;

use m3d_obs::WindowedHistogram;
use proptest::collection::vec;
use proptest::prelude::*;

/// Reference occupant of one ring position: the epoch it belongs to plus
/// the count/min/max of the samples recorded into it.
#[derive(Debug, Clone, Copy)]
struct ModelSlab {
    epoch: u64,
    count: u64,
    min: f64,
    max: f64,
}

/// Replay `samples` (absolute tick, value) through the documented ring
/// semantics: position `epoch % slabs` holds only its latest epoch.
fn model_ring(samples: &[(u64, f64)], slab_us: u64, slabs: u64) -> HashMap<u64, ModelSlab> {
    let mut ring: HashMap<u64, ModelSlab> = HashMap::new();
    for &(now_us, value) in samples {
        let epoch = now_us / slab_us;
        let pos = epoch % slabs;
        let slab = ring.entry(pos).or_insert(ModelSlab {
            epoch,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        });
        if slab.epoch != epoch {
            // A newer epoch reuses the position: the old occupant is
            // dropped wholesale (drop-oldest), exactly like the lazy
            // reset in `WindowedHistogram::record`.
            *slab = ModelSlab {
                epoch,
                count: 0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            };
        }
        slab.count += 1;
        slab.min = slab.min.min(value);
        slab.max = slab.max.max(value);
    }
    ring
}

/// Fold the model slabs overlapping `[(now - window)/slab_us, now/slab_us]`
/// into (count, min, max).
fn model_merged(
    ring: &HashMap<u64, ModelSlab>,
    slab_us: u64,
    now_us: u64,
    window_us: u64,
) -> (u64, f64, f64) {
    let hi = now_us / slab_us;
    let lo = now_us.saturating_sub(window_us) / slab_us;
    let mut count = 0u64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for slab in ring.values() {
        if slab.epoch >= lo && slab.epoch <= hi {
            count += slab.count;
            min = min.min(slab.min);
            max = max.max(slab.max);
        }
    }
    (count, min, max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every (now, window) query agrees with the reference model after an
    /// arbitrary monotonic record stream — including streams that wrap the
    /// ring many times and windows longer than the ring's span.
    #[test]
    fn merged_matches_the_reference_model_across_wraparound(
        slab_us in 1u64..=700,
        slabs in 1usize..=12,
        deltas in vec(0u64..=5_000u64, 1..64),
        window_us in 0u64..=40_000,
        probe_back_us in 0u64..=10_000,
    ) {
        let mut w = WindowedHistogram::new(slab_us, slabs);
        let mut samples = Vec::with_capacity(deltas.len());
        let mut now_us = 0u64;
        for (i, delta) in deltas.iter().enumerate() {
            now_us += delta;
            // Values keyed to the sample index so min/max pin *which*
            // samples survived eviction, not just how many.
            let value = (i as f64) + 1.0;
            w.record(now_us, value);
            samples.push((now_us, value));
        }
        let ring = model_ring(&samples, slab_us, slabs as u64);

        // Query both at the stream's end and at an arbitrary point behind
        // it: `merged` takes the caller's `now` on trust, so epochs ahead
        // of a stale `now` must simply fall outside the window.
        for &query_now in &[now_us, now_us.saturating_sub(probe_back_us)] {
            let (count, min, max) = model_merged(&ring, slab_us, query_now, window_us);
            let snap = w.merged("prop", query_now, window_us);
            prop_assert_eq!(snap.count, count);
            if count > 0 {
                prop_assert_eq!(snap.min, min);
                prop_assert_eq!(snap.max, max);
            }
        }
    }

    /// An unbounded window sees exactly the samples the ring retained:
    /// total recorded minus everything evicted by wraparound, never a
    /// stale resurrected slab. (A merely span-long window can see fewer —
    /// a tick stream that jumps farther than the span strands a still-live
    /// slab behind the window's lower epoch bound.)
    #[test]
    fn unbounded_window_counts_exactly_the_retained_samples(
        slab_us in 1u64..=300,
        slabs in 1usize..=8,
        deltas in vec(0u64..=2_000u64, 1..48),
    ) {
        let mut w = WindowedHistogram::new(slab_us, slabs);
        let mut samples = Vec::with_capacity(deltas.len());
        let mut now_us = 0u64;
        for (i, delta) in deltas.iter().enumerate() {
            now_us += delta;
            w.record(now_us, i as f64);
            samples.push((now_us, i as f64));
        }
        let ring = model_ring(&samples, slab_us, slabs as u64);
        let retained: u64 = ring.values().map(|s| s.count).sum();
        // `saturating_sub` pins the window's lower epoch bound at 0, so
        // every retained slab (epoch <= the last recorded epoch) folds in.
        let snap = w.merged("prop", now_us, u64::MAX);
        prop_assert_eq!(snap.count, retained);
        prop_assert!(retained <= samples.len() as u64);
    }
}
