//! A bounded, lock-sharded flight recorder for structured request
//! records.
//!
//! Serving layers push one [`FlightRecord`] per finished request; the
//! recorder keeps the most recent `capacity` of them in a ring
//! (drop-oldest) so a warm daemon can always answer "what did the last N
//! requests actually do" without unbounded memory. The ring is split
//! into [`SHARDS`] independently-locked segments and records are routed
//! by sequence number, so concurrent writers from different worker
//! threads rarely contend on the same mutex. Evictions are counted and
//! exposed ([`FlightRecorder::dropped`]) — a reader can tell how much
//! history slid past between polls.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently-locked ring segments.
const SHARDS: usize = 8;

/// One completed request, as observed by the serving layer.
///
/// Every field is plain data (no heap beyond the struct itself except the
/// borrowed static strings), so pushing a record is one small clone under
/// one shard lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotonic sequence number assigned by the recorder at push time.
    pub seq: u64,
    /// Request id as sent by the client (recorders may reuse `-1` for
    /// requests whose id never parsed).
    pub id: i64,
    /// Wire method name (`"sim"`, `"plan"`, ...).
    pub method: &'static str,
    /// Request start, microseconds on the recorder owner's timeline.
    pub start_us: u64,
    /// Bytes in the request line.
    pub req_bytes: u64,
    /// Bytes in the (final) response line.
    pub resp_bytes: u64,
    /// Microseconds spent queued before a worker claimed the request.
    pub queue_us: u64,
    /// Microseconds spent executing the request once claimed.
    pub handle_us: u64,
    /// Number of requests coalesced into the batch that served this one
    /// (1 when served alone, 0 when it never reached a batch).
    pub batch: u32,
    /// Outcome kind: `"ok"` or a wire error kind (`"deadline"`,
    /// `"overloaded"`, `"write_error"`, ...).
    pub outcome: &'static str,
}

/// A bounded drop-oldest ring of [`FlightRecord`]s, sharded 8 ways by
/// sequence number.
#[derive(Debug)]
pub struct FlightRecorder {
    seq: AtomicU64,
    dropped: AtomicU64,
    shard_cap: usize,
    shards: Vec<Mutex<VecDeque<FlightRecord>>>,
}

impl FlightRecorder {
    /// A recorder retaining (about) the `capacity` most recent records.
    /// Capacity is rounded up to a multiple of the shard count (minimum
    /// one record per shard).
    pub fn new(capacity: usize) -> Self {
        let shard_cap = capacity.div_ceil(SHARDS).max(1);
        Self {
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            shard_cap,
            shards: (0..SHARDS).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Total records the ring retains before evicting.
    pub fn capacity(&self) -> usize {
        self.shard_cap * SHARDS
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("flight shard").len())
            .sum()
    }

    /// Whether no record has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted so far to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Append a record (its `seq` field is overwritten with the assigned
    /// sequence number, which is returned). Evicts the oldest record in
    /// the target shard when that shard is full.
    pub fn push(&self, mut rec: FlightRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        rec.seq = seq;
        let shard = &self.shards[(seq % SHARDS as u64) as usize];
        let mut ring = shard.lock().expect("flight shard");
        if ring.len() == self.shard_cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(rec);
        seq
    }

    /// The `n` most recent records, newest first.
    pub fn recent(&self, n: usize) -> Vec<FlightRecord> {
        let mut all: Vec<FlightRecord> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().expect("flight shard").iter().cloned().collect::<Vec<_>>())
            .collect();
        all.sort_by_key(|r| std::cmp::Reverse(r.seq));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: i64) -> FlightRecord {
        FlightRecord {
            seq: 0,
            id,
            method: "sim",
            start_us: id as u64,
            req_bytes: 100,
            resp_bytes: 200,
            queue_us: 5,
            handle_us: 50,
            batch: 1,
            outcome: "ok",
        }
    }

    #[test]
    fn recent_returns_newest_first() {
        let fr = FlightRecorder::new(64);
        for i in 0..20 {
            fr.push(rec(i));
        }
        assert_eq!(fr.len(), 20);
        assert_eq!(fr.dropped(), 0);
        let recent = fr.recent(5);
        let ids: Vec<i64> = recent.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![19, 18, 17, 16, 15]);
        // seq strictly descending and consistent with push order.
        assert!(recent.windows(2).all(|w| w[0].seq > w[1].seq));
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let fr = FlightRecorder::new(16); // 2 per shard
        assert_eq!(fr.capacity(), 16);
        for i in 0..40 {
            fr.push(rec(i));
        }
        assert_eq!(fr.len(), 16);
        assert_eq!(fr.dropped(), 24);
        // Exactly the 16 newest survive, regardless of shard layout.
        let ids: Vec<i64> = fr.recent(100).iter().map(|r| r.id).collect();
        assert_eq!(ids, (24..40).rev().collect::<Vec<i64>>());
    }

    #[test]
    fn concurrent_pushes_assign_unique_seqs() {
        let fr = FlightRecorder::new(1024);
        std::thread::scope(|s| {
            for t in 0..4 {
                let fr = &fr;
                s.spawn(move || {
                    for i in 0..100 {
                        fr.push(rec((t * 100 + i) as i64));
                    }
                });
            }
        });
        assert_eq!(fr.len(), 400);
        let mut seqs: Vec<u64> = fr.recent(400).iter().map(|r| r.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 400);
    }

    #[test]
    fn tiny_capacity_still_works() {
        let fr = FlightRecorder::new(1); // rounds up to 1 per shard
        assert_eq!(fr.capacity(), SHARDS);
        assert!(fr.is_empty());
        fr.push(rec(1));
        assert!(!fr.is_empty());
    }
}
