//! Spans, per-thread event shards, and the Chrome `trace_event` exporter.

use std::borrow::Cow;
use std::cell::OnceCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The subset of Chrome trace-event phases the exporter emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A complete event (`"X"`): one span with a start and a duration.
    Complete,
    /// A metadata event (`"M"`): thread names for the trace viewer.
    Metadata,
}

impl TracePhase {
    fn as_str(self) -> &'static str {
        match self {
            TracePhase::Complete => "X",
            TracePhase::Metadata => "M",
        }
    }
}

/// One buffered trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span name (for metadata events: the metadata kind, `thread_name`).
    pub name: Cow<'static, str>,
    /// Category — by convention the crate or subsystem (`thermal`, `sram`,
    /// `experiment`, ...).
    pub cat: &'static str,
    /// Event phase.
    pub ph: TracePhase,
    /// Microseconds since the obs epoch.
    pub ts_us: f64,
    /// Span duration in microseconds (0 for metadata).
    pub dur_us: f64,
    /// Thread id (small sequential integers, stable per thread).
    pub tid: u64,
    /// Metadata argument (`thread_name` payload), if any.
    pub arg_name: Option<String>,
}

/// One thread's event buffer; shared with the global registry for export.
type Shard = Arc<Mutex<Vec<TraceEvent>>>;

/// Per-thread shard registry: each thread buffers into its own mutex (the
/// lock is uncontended except at export time).
fn shards() -> &'static Mutex<Vec<Shard>> {
    static SHARDS: OnceLock<Mutex<Vec<Shard>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_SHARD: OnceCell<Shard> = const { OnceCell::new() };
    static LOCAL_TID: OnceCell<u64> = const { OnceCell::new() };
}

/// This thread's stable trace id (assigned on first use, starting at 1).
fn tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    LOCAL_TID.with(|c| *c.get_or_init(|| NEXT.fetch_add(1, Ordering::Relaxed)))
}

fn push_event(ev: TraceEvent) {
    LOCAL_SHARD.with(|cell| {
        let shard = cell.get_or_init(|| {
            let shard = Arc::new(Mutex::new(Vec::new()));
            shards()
                .lock()
                .expect("obs trace shard registry")
                .push(Arc::clone(&shard));
            shard
        });
        shard.lock().expect("obs trace shard").push(ev);
    });
}

fn now_us() -> f64 {
    Instant::now().duration_since(crate::epoch()).as_secs_f64() * 1e6
}

/// An RAII span: records one complete trace event, from construction to
/// drop, when collection was enabled at construction. Inert (no clock read,
/// no allocation) otherwise.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped"]
pub struct SpanGuard {
    open: Option<(Instant, &'static str, Cow<'static, str>)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((start, cat, name)) = self.open.take() {
            let ts_us = start.duration_since(crate::epoch()).as_secs_f64() * 1e6;
            push_event(TraceEvent {
                name,
                cat,
                ph: TracePhase::Complete,
                ts_us,
                dur_us: now_us() - ts_us,
                tid: tid(),
                arg_name: None,
            });
        }
    }
}

/// Open a span with a static name. The guard records the span on drop.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    SpanGuard {
        open: crate::is_enabled().then(|| (Instant::now(), cat, Cow::Borrowed(name))),
    }
}

/// Open a span whose name is built lazily — the closure (and its
/// allocation) runs only when collection is enabled.
#[inline]
pub fn span_named(cat: &'static str, name: impl FnOnce() -> String) -> SpanGuard {
    SpanGuard {
        open: crate::is_enabled().then(|| (Instant::now(), cat, Cow::Owned(name()))),
    }
}

/// Name the calling thread in the trace viewer (worker-pool lanes). No-op
/// while disabled.
pub fn label_thread(label: impl Into<String>) {
    if !crate::is_enabled() {
        return;
    }
    push_event(TraceEvent {
        name: Cow::Borrowed("thread_name"),
        cat: "meta",
        ph: TracePhase::Metadata,
        ts_us: 0.0,
        dur_us: 0.0,
        tid: tid(),
        arg_name: Some(label.into()),
    });
}

/// Drain every shard and return all events, sorted by timestamp (metadata
/// first at equal timestamps, so thread names precede their spans).
pub fn take_trace() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    for shard in shards().lock().expect("obs trace shard registry").iter() {
        out.append(&mut shard.lock().expect("obs trace shard"));
    }
    out.sort_by(|a, b| {
        let meta_first =
            (a.ph != TracePhase::Metadata).cmp(&(b.ph != TracePhase::Metadata));
        meta_first.then(a.ts_us.total_cmp(&b.ts_us)).then(a.tid.cmp(&b.tid))
    });
    out
}

pub(crate) fn reset() {
    for shard in shards().lock().expect("obs trace shard registry").iter() {
        shard.lock().expect("obs trace shard").clear();
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render events as a Chrome `trace_event` JSON document (the
/// object-with-`traceEvents` form accepted by `chrome://tracing` and
/// Perfetto). Timestamps are microseconds; all events share `pid` 1.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str("  {\"name\": ");
        escape_into(&ev.name, &mut out);
        out.push_str(", \"cat\": ");
        escape_into(ev.cat, &mut out);
        out.push_str(", \"ph\": \"");
        out.push_str(ev.ph.as_str());
        out.push_str("\", \"pid\": 1, \"tid\": ");
        out.push_str(&ev.tid.to_string());
        out.push_str(", \"ts\": ");
        out.push_str(&format!("{:.3}", ev.ts_us));
        match ev.ph {
            TracePhase::Complete => {
                out.push_str(", \"dur\": ");
                out.push_str(&format!("{:.3}", ev.dur_us.max(0.0)));
            }
            TracePhase::Metadata => {
                out.push_str(", \"args\": {\"name\": ");
                escape_into(ev.arg_name.as_deref().unwrap_or(""), &mut out);
                out.push('}');
            }
        }
        out.push('}');
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

/// Drain the trace and write it to `path` as Chrome-trace JSON. Returns the
/// number of events written.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let events = take_trace();
    std::fs::write(path, chrome_trace_json(&events))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_nested_and_threaded() {
        let _l = crate::test_lock();
        crate::enable();
        crate::reset();
        {
            let _outer = span("test", "outer");
            {
                let _inner = span_named("test", || format!("inner-{}", 7));
            }
            std::thread::scope(|s| {
                s.spawn(|| {
                    label_thread("test-worker");
                    let _w = span("test", "worker-span");
                });
            });
        }
        let events = take_trace();
        crate::disable();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_ref()).collect();
        assert!(names.contains(&"outer"));
        assert!(names.contains(&"inner-7"));
        assert!(names.contains(&"worker-span"));
        assert!(names.contains(&"thread_name"));
        let outer = events.iter().find(|e| e.name == "outer").expect("outer");
        let inner = events.iter().find(|e| e.name == "inner-7").expect("inner");
        assert!(outer.dur_us >= inner.dur_us);
        assert!(outer.ts_us <= inner.ts_us);
        // The worker ran on a different thread lane.
        let worker = events.iter().find(|e| e.name == "worker-span").expect("w");
        assert_ne!(worker.tid, outer.tid);
        // Drained: a second take is empty.
        assert!(take_trace().is_empty());
    }

    #[test]
    fn chrome_json_shape_and_escaping() {
        let events = vec![
            TraceEvent {
                name: Cow::Borrowed("thread_name"),
                cat: "meta",
                ph: TracePhase::Metadata,
                ts_us: 0.0,
                dur_us: 0.0,
                tid: 3,
                arg_name: Some("worker \"0\"".to_owned()),
            },
            TraceEvent {
                name: Cow::Owned("solve\nx".to_owned()),
                cat: "thermal",
                ph: TracePhase::Complete,
                ts_us: 1.5,
                dur_us: 2.25,
                tid: 3,
                arg_name: None,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("{\"displayTimeUnit\": \"ms\", \"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"M\""));
        assert!(json.contains("\"args\": {\"name\": \"worker \\\"0\\\"\"}"));
        assert!(json.contains("\"name\": \"solve\\nx\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"dur\": 2.250"));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let json = chrome_trace_json(&[]);
        assert!(json.contains("\"traceEvents\": [\n]}"), "{json}");
    }

    #[test]
    fn metadata_sorts_before_spans() {
        let _l = crate::test_lock();
        crate::enable();
        crate::reset();
        {
            let _s = span("test", "before-label");
        }
        label_thread("late-label");
        let events = take_trace();
        crate::disable();
        assert_eq!(events[0].ph, TracePhase::Metadata);
    }
}
