//! Rolling-window histograms: a ring of fixed-duration log₂-bucket slabs
//! driven entirely by the caller's clock.
//!
//! A [`WindowedHistogram`] never spawns a thread and never reads the wall
//! clock itself — every call takes `now_us`, microseconds on whatever
//! monotonic timeline the caller owns (a daemon passes
//! `Instant::elapsed()` from its start; a test passes hand-picked ticks,
//! making expiry fully deterministic). Each recorded value lands in the
//! slab covering `now_us`; reads merge the slabs overlapping the
//! requested trailing window into one [`HistogramSnapshot`], so rolling
//! 1 s / 10 s / 60 s views come from the same ring with no per-window
//! bookkeeping on the write path.

use crate::metrics::{Histogram, HistogramSnapshot};

/// Sentinel epoch marking a slab that has never been written.
const UNUSED: u64 = u64::MAX;

/// One slab: the histogram for a single `[epoch*slab_us, (epoch+1)*slab_us)`
/// interval of the caller's timeline.
#[derive(Debug, Clone)]
struct Slab {
    /// Slab index on the caller's timeline (`now_us / slab_us`), or
    /// [`UNUSED`].
    epoch: u64,
    hist: Histogram,
}

/// A ring of `B` fixed-duration log₂-bucket histogram slabs.
///
/// Writes are O(1): pick the slab for `now_us`, lazily resetting it when
/// the ring has wrapped past its previous occupant (drop-oldest, so the
/// ring covers exactly the trailing `slabs * slab_us` microseconds).
/// Reads ([`merged`](Self::merged)) fold the live slabs inside the
/// requested window via the histogram merge path, preserving exact
/// quantiles while the window holds few samples.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    slab_us: u64,
    slabs: Vec<Slab>,
}

impl WindowedHistogram {
    /// A ring of `slabs` slabs, each covering `slab_us` microseconds.
    ///
    /// # Panics
    /// When `slab_us == 0` or `slabs == 0`.
    pub fn new(slab_us: u64, slabs: usize) -> Self {
        assert!(slab_us > 0, "slab duration must be positive");
        assert!(slabs > 0, "ring needs at least one slab");
        Self {
            slab_us,
            slabs: vec![
                Slab {
                    epoch: UNUSED,
                    hist: Histogram::default(),
                };
                slabs
            ],
        }
    }

    /// Duration of one slab in microseconds.
    pub fn slab_us(&self) -> u64 {
        self.slab_us
    }

    /// Total timeline coverage of the ring in microseconds — the longest
    /// window [`merged`](Self::merged) can answer without truncation.
    pub fn span_us(&self) -> u64 {
        self.slab_us * self.slabs.len() as u64
    }

    /// Record `value` into the slab covering `now_us`. Reuses (resets) the
    /// ring position if its occupant belongs to an older epoch.
    pub fn record(&mut self, now_us: u64, value: f64) {
        let epoch = now_us / self.slab_us;
        let pos = (epoch % self.slabs.len() as u64) as usize;
        let slab = &mut self.slabs[pos];
        if slab.epoch != epoch {
            slab.epoch = epoch;
            slab.hist = Histogram::default();
        }
        slab.hist.record(value);
    }

    /// Merge every slab overlapping the trailing `window_us` microseconds
    /// ending at `now_us` into one snapshot named `name`.
    ///
    /// A slab counts when its epoch lies in
    /// `[(now_us - window_us)/slab_us, now_us/slab_us]` — i.e. partial
    /// slabs at both window edges are included whole, so a window may see
    /// up to one slab-duration of extra history (the usual slab-ring
    /// rounding; with 250 ms slabs a "1 s" view spans at most 1.25 s).
    /// Windows longer than [`span_us`](Self::span_us) truncate to the
    /// ring's coverage.
    pub fn merged(&self, name: &str, now_us: u64, window_us: u64) -> HistogramSnapshot {
        let hi = now_us / self.slab_us;
        let lo = now_us.saturating_sub(window_us) / self.slab_us;
        let mut folded = Histogram::default();
        for slab in &self.slabs {
            if slab.epoch != UNUSED && slab.epoch >= lo && slab.epoch <= hi {
                folded.merge(&slab.hist);
            }
        }
        folded.snapshot(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_roll_deterministically_under_injected_ticks() {
        let mut w = WindowedHistogram::new(1_000_000, 64); // 1 s slabs
        w.record(500_000, 10.0); // t = 0.5 s
        w.record(5_500_000, 20.0); // t = 5.5 s
        w.record(5_600_000, 30.0); // t = 5.6 s
        let now = 5_700_000;
        // 1 s window: only the two samples in the current slab.
        let one = w.merged("lat", now, 1_000_000);
        assert_eq!(one.count, 2);
        assert_eq!(one.min, 20.0);
        assert_eq!(one.max, 30.0);
        // 10 s window: everything.
        let ten = w.merged("lat", now, 10_000_000);
        assert_eq!(ten.count, 3);
        assert_eq!(ten.quantile(1.0), 30.0);
        assert_eq!(ten.quantile(0.01), 10.0);
        // Same ticks, same answer: reads never mutate.
        assert_eq!(w.merged("lat", now, 10_000_000), ten);
    }

    #[test]
    fn old_samples_expire_out_of_the_window() {
        let mut w = WindowedHistogram::new(250_000, 8); // 2 s coverage
        w.record(0, 1.0);
        assert_eq!(w.merged("h", 0, 250_000).count, 1);
        // 1.9 s later the sample is outside a 1 s window but inside 2 s.
        assert_eq!(w.merged("h", 1_900_000, 1_000_000).count, 0);
        assert_eq!(w.merged("h", 1_900_000, 2_000_000).count, 1);
    }

    #[test]
    fn ring_wraparound_drops_the_oldest_slab() {
        let mut w = WindowedHistogram::new(100, 4); // 400 µs coverage
        for t in 0..4u64 {
            w.record(t * 100, t as f64);
        }
        assert_eq!(w.merged("h", 399, 400).count, 4);
        // Epoch 4 reuses epoch 0's position: the 0.0 sample is gone even
        // if we ask for a window that would have covered it.
        w.record(400, 4.0);
        let snap = w.merged("h", 400, 1_000_000);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.min, 1.0);
        assert_eq!(snap.max, 4.0);
    }

    #[test]
    fn span_and_slab_accessors() {
        let w = WindowedHistogram::new(250_000, 256);
        assert_eq!(w.slab_us(), 250_000);
        assert_eq!(w.span_us(), 64_000_000);
    }

    #[test]
    fn small_windows_keep_exact_quantiles() {
        let mut w = WindowedHistogram::new(1_000, 16);
        for (i, v) in [5.0, 1.0, 9.0, 3.0].iter().enumerate() {
            w.record(i as u64 * 1_000, *v);
        }
        let snap = w.merged("h", 3_500, 16_000);
        assert_eq!(snap.count, 4);
        // Four samples across four slabs: merge preserved the exact set.
        assert_eq!(snap.quantile(0.5), 3.0);
        assert_eq!(snap.quantile(0.75), 5.0);
    }
}
