//! Named counters, log₂-scaled histograms, and per-task attribution.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// While a histogram holds at most this many values, the raw samples are
/// retained alongside the buckets so quantile queries are **exact**.
/// Beyond the cap the sample buffer is dropped (bounding memory) and
/// quantiles fall back to the log₂-bucket estimate.
pub const EXACT_QUANTILE_CAP: usize = 64;

/// A log₂-bucketed histogram: values are folded into buckets keyed by
/// `value.log2().floor()` (clamped), which covers the whole positive f64
/// range in ~2100 sparse buckets while keeping residuals around `1e-5` and
/// iteration counts around `1e4` equally well resolved.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: BTreeMap<i32, u64>,
    /// Raw samples, kept only while `count <= EXACT_QUANTILE_CAP`.
    exact: Vec<f64>,
}

/// The log₂ bucket a value falls into. Non-finite and non-positive values
/// land in the dedicated lowest bucket (they still count towards `count`
/// but not `min`/`max`/`sum` semantics beyond the raw addition).
fn bucket_of(value: f64) -> i32 {
    if value.is_finite() && value > 0.0 {
        value.log2().floor().clamp(-1080.0, 1080.0) as i32
    } else {
        i32::MIN
    }
}

impl Histogram {
    pub(crate) fn record(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
        *self.buckets.entry(bucket_of(value)).or_insert(0) += 1;
        if self.count <= EXACT_QUANTILE_CAP as u64 {
            self.exact.push(value);
        } else if !self.exact.is_empty() {
            self.exact = Vec::new();
        }
    }

    /// Fold `other` into `self` — the [`WindowedHistogram`] read path.
    /// The exact-sample buffer survives only when both sides still hold
    /// their full sample sets and the union stays under the cap.
    ///
    /// [`WindowedHistogram`]: crate::WindowedHistogram
    pub(crate) fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        if self.exact.len() as u64 == self.count
            && other.exact.len() as u64 == other.count
            && self.count + other.count <= EXACT_QUANTILE_CAP as u64
        {
            self.exact.extend_from_slice(&other.exact);
        } else {
            self.exact = Vec::new();
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, c) in &other.buckets {
            *self.buckets.entry(*b).or_insert(0) += c;
        }
    }

    pub(crate) fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_owned(),
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self.buckets.iter().map(|(b, c)| (*b, *c)).collect(),
            exact: self.exact.clone(),
        }
    }
}

/// One histogram's exported state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name (dot-separated, e.g. `thermal.residual_k`).
    pub name: String,
    /// Values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Sparse `(log2 bucket, count)` pairs, ascending by bucket.
    pub buckets: Vec<(i32, u64)>,
    /// Raw samples, populated only while `count <=`
    /// [`EXACT_QUANTILE_CAP`] (empty beyond, and empty after a JSON
    /// round-trip — the buffer is in-process fidelity, never serialized).
    pub exact: Vec<f64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` clamped to `0.0..=1.0`) of the
    /// recorded values; 0.0 when empty.
    ///
    /// **Exact** (nearest-rank over the retained raw samples) while the
    /// histogram holds at most [`EXACT_QUANTILE_CAP`] values. Beyond
    /// that, the estimate comes from the log₂ buckets: the true quantile
    /// lies somewhere in the same `[2^b, 2^{b+1})` bucket as the
    /// estimate, so the result is within a **factor of 2** of the true
    /// value (log-midpoint interpolation inside the bucket), and
    /// clamping to the recorded `min`/`max` keeps the extreme quantiles
    /// tight. Non-positive and non-finite samples live in a sentinel
    /// bucket below every real one; a quantile landing there answers the
    /// recorded minimum.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if self.exact.len() as u64 == self.count {
            let mut sorted = self.exact.clone();
            sorted.sort_by(f64::total_cmp);
            return sorted[(rank - 1) as usize];
        }
        let mut below = 0u64;
        for (b, c) in &self.buckets {
            if below + c >= rank {
                if *b == i32::MIN {
                    return self.min;
                }
                let lo = (*b as f64).exp2();
                let pos = (rank - below) as f64 - 0.5;
                let est = lo * (pos / *c as f64).exp2();
                return est.max(self.min).min(self.max);
            }
            below += c;
        }
        self.max
    }
}

/// A point-in-time copy of every counter and histogram in a store.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// Histograms, ascending by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` into `self`: counters add, histograms fold bucket-wise.
    /// Used to aggregate per-experiment snapshots into a run-wide total.
    pub fn merge_from(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => self.counters[i].1 += v,
                Err(i) => self.counters.insert(i, (name.clone(), *v)),
            }
        }
        for h in &other.histograms {
            match self
                .histograms
                .binary_search_by(|mine| mine.name.cmp(&h.name))
            {
                Ok(i) => {
                    let mine = &mut self.histograms[i];
                    if mine.count == 0 {
                        *mine = h.clone();
                        continue;
                    }
                    if h.count == 0 {
                        continue;
                    }
                    if mine.exact.len() as u64 == mine.count
                        && h.exact.len() as u64 == h.count
                        && mine.count + h.count <= EXACT_QUANTILE_CAP as u64
                    {
                        mine.exact.extend_from_slice(&h.exact);
                    } else {
                        mine.exact = Vec::new();
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                    mine.min = mine.min.min(h.min);
                    mine.max = mine.max.max(h.max);
                    for (b, c) in &h.buckets {
                        match mine.buckets.binary_search_by(|(mb, _)| mb.cmp(b)) {
                            Ok(j) => mine.buckets[j].1 += c,
                            Err(j) => mine.buckets.insert(j, (*b, *c)),
                        }
                    }
                }
                Err(i) => self.histograms.insert(i, h.clone()),
            }
        }
    }
}

/// The global store: counters behind shared atomics (with a thread-local
/// handle cache so the steady-state `add` takes no lock), histograms behind
/// one mutex (recorded at solve granularity, not per sweep).
#[derive(Default)]
struct Store {
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(Store::default)
}

thread_local! {
    static COUNTER_CACHE: RefCell<HashMap<&'static str, Arc<AtomicU64>>> =
        RefCell::new(HashMap::new());
    static CURRENT_TASK: RefCell<Vec<TaskMetrics>> = const { RefCell::new(Vec::new()) };
}

fn counter_handle(name: &'static str) -> Arc<AtomicU64> {
    COUNTER_CACHE.with(|cache| {
        if let Some(h) = cache.borrow().get(name) {
            return Arc::clone(h);
        }
        let h = {
            let mut map = store().counters.lock().expect("obs counter registry");
            Arc::clone(map.entry(name).or_default())
        };
        cache.borrow_mut().insert(name, Arc::clone(&h));
        h
    })
}

/// Add `delta` to the named counter (and to the current task's copy, when a
/// task is entered on this thread). No-op while collection is disabled.
#[inline]
pub fn add(name: &'static str, delta: u64) {
    if !crate::is_enabled() {
        return;
    }
    add_slow(name, delta);
}

#[cold]
fn add_slow(name: &'static str, delta: u64) {
    counter_handle(name).fetch_add(delta, Ordering::Relaxed);
    CURRENT_TASK.with(|stack| {
        if let Some(task) = stack.borrow().last() {
            task.add_local(name, delta);
        }
    });
}

/// Record `value` into the named log₂ histogram (and the current task's
/// copy). No-op while collection is disabled.
#[inline]
pub fn record(name: &'static str, value: f64) {
    if !crate::is_enabled() {
        return;
    }
    record_slow(name, value);
}

#[cold]
fn record_slow(name: &'static str, value: f64) {
    store()
        .histograms
        .lock()
        .expect("obs histogram registry")
        .entry(name)
        .or_default()
        .record(value);
    CURRENT_TASK.with(|stack| {
        if let Some(task) = stack.borrow().last() {
            task.record_local(name, value);
        }
    });
}

/// Snapshot the global store (counters with value 0 are omitted).
pub fn snapshot() -> MetricsSnapshot {
    let counters = store()
        .counters
        .lock()
        .expect("obs counter registry")
        .iter()
        .map(|(n, v)| ((*n).to_owned(), v.load(Ordering::Relaxed)))
        .filter(|(_, v)| *v != 0)
        .collect();
    let histograms = store()
        .histograms
        .lock()
        .expect("obs histogram registry")
        .iter()
        .filter(|(_, h)| h.count != 0)
        .map(|(n, h)| h.snapshot(n))
        .collect();
    MetricsSnapshot {
        counters,
        histograms,
    }
}

pub(crate) fn reset() {
    for v in store()
        .counters
        .lock()
        .expect("obs counter registry")
        .values()
    {
        v.store(0, Ordering::Relaxed);
    }
    store()
        .histograms
        .lock()
        .expect("obs histogram registry")
        .clear();
}

/// A named task-scoped metrics accumulator.
///
/// An experiment creates one, [`enter`](TaskMetrics::enter)s it on every
/// thread doing that experiment's work, and takes a
/// [`snapshot`](TaskMetrics::snapshot) at the end. All `add`/`record` calls
/// made while a task is the innermost entered task on the calling thread
/// are mirrored into it, giving exact per-experiment counters even when
/// several experiments share the process concurrently.
#[derive(Debug, Clone)]
pub struct TaskMetrics {
    inner: Arc<TaskInner>,
}

#[derive(Debug)]
struct TaskInner {
    name: String,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl TaskMetrics {
    /// A fresh, empty task.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            inner: Arc::new(TaskInner {
                name: name.into(),
                counters: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// The task's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Make this the current task on the calling thread until the returned
    /// guard drops. Nestable; the innermost entered task wins.
    pub fn enter(&self) -> TaskGuard {
        CURRENT_TASK.with(|stack| stack.borrow_mut().push(self.clone()));
        TaskGuard {
            _not_send: std::marker::PhantomData,
        }
    }

    fn add_local(&self, name: &'static str, delta: u64) {
        *self
            .inner
            .counters
            .lock()
            .expect("obs task counters")
            .entry(name)
            .or_insert(0) += delta;
    }

    fn record_local(&self, name: &'static str, value: f64) {
        self.inner
            .histograms
            .lock()
            .expect("obs task histograms")
            .entry(name)
            .or_default()
            .record(value);
    }

    /// Snapshot everything attributed to this task so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .expect("obs task counters")
            .iter()
            .map(|(n, v)| ((*n).to_owned(), *v))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .expect("obs task histograms")
            .iter()
            .map(|(n, h)| h.snapshot(n))
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// The task entered innermost on the calling thread, if any. Worker pools
/// capture this before spawning and re-`enter` it inside each worker so
/// fan-out work stays attributed to the right experiment.
pub fn current_task() -> Option<TaskMetrics> {
    CURRENT_TASK.with(|stack| stack.borrow().last().cloned())
}

/// Pops the entered task when dropped. Deliberately `!Send`: a guard must
/// drop on the thread that entered the task.
#[derive(Debug)]
pub struct TaskGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for TaskGuard {
    fn drop(&mut self) {
        CURRENT_TASK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads() {
        let _l = crate::test_lock();
        crate::enable();
        crate::reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        add("test.metrics.sum", 2);
                    }
                });
            }
        });
        assert_eq!(snapshot().counter("test.metrics.sum"), Some(800));
        crate::disable();
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let _l = crate::test_lock();
        crate::enable();
        crate::reset();
        for v in [0.5, 1.0, 1.5, 4.0, 1e-5, 0.0] {
            record("test.metrics.hist", v);
        }
        let snap = snapshot();
        let h = snap.histogram("test.metrics.hist").expect("recorded");
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 4.0);
        assert!((h.mean() - (0.5 + 1.0 + 1.5 + 4.0 + 1e-5) / 6.0).abs() < 1e-12);
        // 1.0 and 1.5 share the 2^0 bucket; 0.0 goes to the sentinel bucket.
        let count_at = |b: i32| h.buckets.iter().find(|(k, _)| *k == b).map(|(_, c)| *c);
        assert_eq!(count_at(0), Some(2));
        assert_eq!(count_at(-1), Some(1)); // 0.5
        assert_eq!(count_at(2), Some(1)); // 4.0
        assert_eq!(count_at(i32::MIN), Some(1)); // 0.0
        crate::disable();
    }

    #[test]
    fn bucket_function_handles_extremes() {
        assert_eq!(bucket_of(f64::NAN), i32::MIN);
        assert_eq!(bucket_of(f64::NEG_INFINITY), i32::MIN);
        assert_eq!(bucket_of(-3.0), i32::MIN);
        assert_eq!(bucket_of(f64::MIN_POSITIVE), -1022);
        // f64::MAX.log2() rounds up to exactly 1024.0 in f64 arithmetic.
        assert_eq!(bucket_of(f64::MAX), 1024);
        assert_eq!(bucket_of(8.0), 3);
    }

    #[test]
    fn tasks_attribute_exactly_and_propagate() {
        let _l = crate::test_lock();
        crate::enable();
        crate::reset();
        let a = TaskMetrics::new("task-a");
        let b = TaskMetrics::new("task-b");
        {
            let _ga = a.enter();
            add("test.task.n", 1);
            // A worker thread picks up the current task explicitly.
            let cur = current_task().expect("task entered");
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _g = cur.enter();
                    add("test.task.n", 10);
                    record("test.task.h", 2.0);
                });
            });
        }
        {
            let _gb = b.enter();
            add("test.task.n", 100);
        }
        add("test.task.n", 1000); // no task entered: global only
        assert_eq!(a.snapshot().counter("test.task.n"), Some(11));
        assert_eq!(a.snapshot().histogram("test.task.h").map(|h| h.count), Some(1));
        assert_eq!(b.snapshot().counter("test.task.n"), Some(100));
        assert!(b.snapshot().histogram("test.task.h").is_none());
        assert_eq!(snapshot().counter("test.task.n"), Some(1111));
        crate::disable();
    }

    #[test]
    fn nested_tasks_innermost_wins() {
        let _l = crate::test_lock();
        crate::enable();
        crate::reset();
        let outer = TaskMetrics::new("outer");
        let inner = TaskMetrics::new("inner");
        let _go = outer.enter();
        {
            let _gi = inner.enter();
            add("test.nest.n", 5);
            assert_eq!(current_task().expect("inner").name(), "inner");
        }
        add("test.nest.n", 2);
        assert_eq!(inner.snapshot().counter("test.nest.n"), Some(5));
        assert_eq!(outer.snapshot().counter("test.nest.n"), Some(2));
        crate::disable();
    }

    #[test]
    fn snapshot_is_sorted_and_omits_zeros() {
        let _l = crate::test_lock();
        crate::enable();
        crate::reset();
        add("test.sort.b", 1);
        add("test.sort.a", 1);
        add("test.sort.zero", 0);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(snap.counter("test.sort.zero"), None);
        crate::disable();
    }

    #[test]
    fn quantiles_are_exact_below_the_cap() {
        let mut h = Histogram::default();
        for v in 1..=50u32 {
            h.record(v as f64);
        }
        let snap = h.snapshot("q");
        assert_eq!(snap.exact.len(), 50);
        assert_eq!(snap.quantile(0.0), 1.0);
        assert_eq!(snap.quantile(0.5), 25.0);
        assert_eq!(snap.quantile(0.9), 45.0);
        assert_eq!(snap.quantile(1.0), 50.0);
        // Out-of-range q clamps.
        assert_eq!(snap.quantile(7.0), 50.0);
        assert_eq!(Histogram::default().snapshot("e").quantile(0.5), 0.0);
    }

    #[test]
    fn quantiles_above_the_cap_stay_within_a_factor_of_two() {
        let mut h = Histogram::default();
        for v in 1..=1000u32 {
            h.record(v as f64);
        }
        let snap = h.snapshot("q");
        assert!(snap.exact.is_empty(), "cap must drop the raw samples");
        for (q, truth) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = snap.quantile(q);
            assert!(
                est >= truth / 2.0 && est <= truth * 2.0,
                "q={q}: est {est} vs true {truth}"
            );
        }
        // Extremes clamp to the recorded range.
        assert_eq!(snap.quantile(1.0), 1000.0);
        assert!(snap.quantile(0.001) >= 1.0);
    }

    #[test]
    fn quantile_sentinel_bucket_answers_the_minimum() {
        let mut h = Histogram::default();
        h.record(0.0);
        h.record(-3.0);
        h.record(8.0);
        let snap = h.snapshot("q");
        // rank 1 and 2 land in the sentinel bucket.
        assert_eq!(snap.quantile(0.3), -3.0);
        assert_eq!(snap.quantile(1.0), 8.0);
    }

    #[test]
    fn histogram_merge_preserves_small_exact_sets_and_drops_large_ones() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [1.0, 2.0, 3.0] {
            a.record(v);
        }
        for v in [10.0, 20.0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count, 5);
        assert_eq!(a.exact.len(), 5);
        assert_eq!(a.snapshot("m").quantile(1.0), 20.0);

        let mut big = Histogram::default();
        for v in 0..EXACT_QUANTILE_CAP {
            big.record(v as f64 + 1.0);
        }
        a.merge(&big);
        assert_eq!(a.count, 5 + EXACT_QUANTILE_CAP as u64);
        assert!(a.exact.is_empty(), "union over the cap drops samples");
    }

    #[test]
    fn snapshot_merge_folds_everything() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(1.0);
        b.record(8.0);
        b.record(0.25);
        let mut sa = MetricsSnapshot {
            counters: vec![("n.a".into(), 2), ("n.b".into(), 3)],
            histograms: vec![a.snapshot("m")],
        };
        let sb = MetricsSnapshot {
            counters: vec![("n.b".into(), 10), ("n.c".into(), 1)],
            histograms: vec![b.snapshot("m"), b.snapshot("other")],
        };
        sa.merge_from(&sb);
        assert_eq!(sa.counter("n.a"), Some(2));
        assert_eq!(sa.counter("n.b"), Some(13));
        assert_eq!(sa.counter("n.c"), Some(1));
        let m = sa.histogram("m").expect("merged");
        assert_eq!(m.count, 3);
        assert_eq!(m.min, 0.25);
        assert_eq!(m.max, 8.0);
        assert_eq!(sa.histogram("other").map(|h| h.count), Some(2));
        // Merging into an empty snapshot copies everything.
        let mut empty = MetricsSnapshot::default();
        empty.merge_from(&sa);
        assert_eq!(empty, sa);
    }
}
