//! `m3d-obs` — the workspace's dependency-free tracing and metrics
//! substrate.
//!
//! Everything below the experiment boundary (the red–black SOR iteration
//! loop, the SRAM subarray-organization search, power accounting, the
//! `repro` worker pool) reports into this crate, which turns the raw
//! signals into two artefacts:
//!
//! * **Hierarchical spans** ([`span`] / [`span_named`]) — RAII guards on a
//!   process-wide monotonic clock, buffered per thread in a mutex-sharded
//!   registry and exported as a Chrome `trace_event` JSON file
//!   ([`write_chrome_trace`]) loadable in `chrome://tracing` or Perfetto.
//! * **Named counters and log₂-scaled histograms** ([`add`] / [`record`]) —
//!   solver sweeps, warm-start hits, search candidates pruned, µops
//!   simulated — snapshotted into a [`MetricsSnapshot`] either globally
//!   ([`snapshot`]) or attributed to one experiment via [`TaskMetrics`].
//!
//! For *live* serving telemetry (rolling windows rather than
//! process-lifetime totals) the crate additionally offers:
//!
//! * **Quantiles** — [`HistogramSnapshot::quantile`] estimates
//!   p50/p90/p95/p99 from the log₂ buckets (within a factor of 2, exact
//!   below [`EXACT_QUANTILE_CAP`] samples).
//! * **[`WindowedHistogram`]** — a ring of fixed-duration slabs driven by
//!   the caller's clock (no background thread; deterministic under test
//!   via injected ticks) merged on read into rolling 1 s/10 s/60 s views.
//! * **[`FlightRecorder`]** — a bounded, lock-sharded drop-oldest ring of
//!   structured per-request [`FlightRecord`]s with an eviction counter.
//!
//! # Zero cost when off
//!
//! Collection is disabled by default. Every entry point begins with one
//! relaxed atomic load ([`is_enabled`]); when it returns `false` the call
//! returns immediately, allocates nothing, and takes no lock. Instrumented
//! hot paths therefore pay one predictable branch per call site — the
//! `obs_overhead` bench and the `perf_baseline` tool keep that budget
//! honest (< 2 % on a thermal solve even with collection *on*, since
//! instrumentation sits at solve granularity, not per sweep).
//!
//! # Thread model
//!
//! All stores are process-wide. Spans and counters may be emitted from any
//! thread; trace events land in a per-thread shard (uncontended lock) and
//! merge at export. Counter attribution to the *current task* follows an
//! explicit thread-local stack — worker pools that fan an experiment out
//! over threads propagate it with [`current_task`] + [`TaskMetrics::enter`].

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod flight;
mod metrics;
mod trace;
mod window;

pub use flight::{FlightRecord, FlightRecorder};
pub use metrics::{
    add, current_task, record, snapshot, HistogramSnapshot, MetricsSnapshot, TaskGuard,
    TaskMetrics, EXACT_QUANTILE_CAP,
};
pub use window::WindowedHistogram;
pub use trace::{
    chrome_trace_json, label_thread, span, span_named, take_trace, write_chrome_trace,
    SpanGuard, TraceEvent, TracePhase,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn collection on. Idempotent; also pins the trace epoch so span
/// timestamps are relative to the first enablement.
pub fn enable() {
    let _ = epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn collection off. Spans created while enabled still record on drop;
/// new entry points become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether collection is currently enabled (one relaxed atomic load — this
/// is the entire disabled-path cost of every instrumentation site).
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide monotonic epoch all span timestamps are measured from.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Drop every buffered trace event, counter, and histogram (global and
/// task-local stores are untouched for *entered* tasks, which hold their
/// own buffers). Intended for tests and for tools that take several
/// independent measurement windows in one process.
pub fn reset() {
    trace::reset();
    metrics::reset();
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_paths_collect_nothing() {
        let _l = test_lock();
        disable();
        reset();
        add("x.counter", 3);
        record("x.hist", 2.0);
        {
            let _s = span("cat", "noop");
            let _n = span_named("cat", || "never built".to_owned());
        }
        let snap = snapshot();
        assert!(snap.counters.is_empty(), "{:?}", snap.counters);
        assert!(snap.histograms.is_empty());
        assert!(take_trace().is_empty());
    }

    #[test]
    fn enable_disable_roundtrip() {
        let _l = test_lock();
        disable();
        assert!(!is_enabled());
        enable();
        assert!(is_enabled());
        disable();
        assert!(!is_enabled());
    }
}
