//! Reference layout cells used for the paper's area comparisons.
//!
//! The paper (Figure 2, Table 1) compares via areas against:
//!
//! * an FO1 inverter (1×),
//! * an SRAM bitcell (2× the inverter),
//! * a 32-bit adder (77.7 µm² at 15 nm, from Intel data),
//! * a 32-bit SRAM word (2.3 µm² at 15 nm, from Intel data).
//!
//! Areas are expressed in units of F² so that they scale with the node.

use crate::node::TechnologyNode;
use crate::via::Via;

/// Area of an FO1 inverter in square feature sizes.
///
/// Calibrated so that the MIV/inverter area ratio at 15 nm is 0.07×, matching
/// the paper's Figure 2: (50 nm)² / (160 F² at 15 nm) ≈ 0.069.
pub const INV_FO1_AREA_F2: f64 = 160.0;

/// Area of a single-ported 6T SRAM bitcell in square feature sizes (2× the
/// FO1 inverter, per Figure 2).
pub const SRAM_BITCELL_AREA_F2: f64 = 320.0;

/// Area of a 32-bit adder in square feature sizes.
///
/// 77.7 µm² at 15 nm (Intel) = 77.7 / (0.015 µm)² ≈ 345,333 F².
pub const ADDER_32B_AREA_F2: f64 = 77.7 / (0.015 * 0.015);

/// Area of a 32-bit SRAM word (32 bitcells plus local overhead) in square
/// feature sizes: 2.3 µm² at 15 nm ≈ 10,222 F².
pub const SRAM_32B_WORD_AREA_F2: f64 = 2.3 / (0.015 * 0.015);

/// A reference structure against which via overhead is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefCell {
    /// Fan-out-of-1 inverter.
    InverterFo1,
    /// Single 6T SRAM bitcell.
    SramBitcell,
    /// 32-bit adder (Table 1, row 1).
    Adder32,
    /// 32-bit SRAM word (Table 1, row 2).
    SramWord32,
}

impl RefCell {
    /// Area of the reference cell in square feature sizes.
    pub fn area_f2(self) -> f64 {
        match self {
            RefCell::InverterFo1 => INV_FO1_AREA_F2,
            RefCell::SramBitcell => SRAM_BITCELL_AREA_F2,
            RefCell::Adder32 => ADDER_32B_AREA_F2,
            RefCell::SramWord32 => SRAM_32B_WORD_AREA_F2,
        }
    }

    /// Area of the reference cell at a given node, square micrometres.
    pub fn area_um2(self, node: &TechnologyNode) -> f64 {
        node.f2_to_um2(self.area_f2())
    }

    /// Human-readable label matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            RefCell::InverterFo1 => "INV FO1",
            RefCell::SramBitcell => "SRAM Bitcell",
            RefCell::Adder32 => "32bit Adder",
            RefCell::SramWord32 => "32bit SRAM Cell",
        }
    }
}

impl std::fmt::Display for RefCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Percentage area overhead of one via (including any keep-out zone) relative
/// to a reference cell at the given node. This is the quantity tabulated in
/// the paper's Table 1.
///
/// # Example
///
/// ```
/// use m3d_tech::node::TechnologyNode;
/// use m3d_tech::refcells::{via_overhead_pct, RefCell};
/// use m3d_tech::via::Via;
///
/// let node = TechnologyNode::n15();
/// let miv = Via::miv(&node);
/// let pct = via_overhead_pct(&miv, RefCell::Adder32, &node);
/// assert!(pct < 0.01); // "<0.01%" in Table 1
/// ```
pub fn via_overhead_pct(via: &Via, cell: RefCell, node: &TechnologyNode) -> f64 {
    100.0 * via.occupied_area_um2() / cell.area_um2(node)
}

/// Area of a structure relative to the FO1 inverter at the same node
/// (the paper's Figure 2 normalisation).
pub fn relative_to_inverter(area_um2: f64, node: &TechnologyNode) -> f64 {
    area_um2 / RefCell::InverterFo1.area_um2(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::via::Via;

    fn n15() -> TechnologyNode {
        TechnologyNode::n15()
    }

    #[test]
    fn figure2_relative_areas() {
        let node = n15();
        let miv = Via::miv(&node);
        let tsv = Via::tsv_aggressive();
        let inv = RefCell::InverterFo1.area_um2(&node);

        let miv_rel = miv.occupied_area_um2() / inv;
        let cell_rel = RefCell::SramBitcell.area_um2(&node) / inv;
        let tsv_rel = tsv.occupied_area_um2() / inv;

        // Paper: MIV 0.07x, bitcell 2x, TSV 37x (bare TSV without KOZ is
        // ~47x smaller; the figure uses the drawn 1.3um square ≈ 37x... we
        // check the occupied-area ratio is in the tens).
        assert!((miv_rel - 0.07).abs() < 0.02, "miv_rel = {miv_rel}");
        assert!((cell_rel - 2.0).abs() < 0.01, "cell_rel = {cell_rel}");
        assert!(tsv_rel > 30.0 && tsv_rel < 200.0, "tsv_rel = {tsv_rel}");
    }

    #[test]
    fn table1_adder_overheads() {
        let node = n15();
        let miv = via_overhead_pct(&Via::miv(&node), RefCell::Adder32, &node);
        let tsv13 = via_overhead_pct(&Via::tsv_aggressive(), RefCell::Adder32, &node);
        let tsv5 = via_overhead_pct(&Via::tsv_recent(), RefCell::Adder32, &node);
        assert!(miv < 0.01, "MIV vs adder must be <0.01%, got {miv}");
        assert!((tsv13 - 8.0).abs() < 0.5, "TSV1.3 vs adder ≈ 8%, got {tsv13}");
        assert!(tsv5 > 100.0, "TSV5 vs adder > 100%, got {tsv5}");
    }

    #[test]
    fn table1_sram_word_overheads() {
        let node = n15();
        let miv = via_overhead_pct(&Via::miv(&node), RefCell::SramWord32, &node);
        let tsv13 = via_overhead_pct(&Via::tsv_aggressive(), RefCell::SramWord32, &node);
        assert!((miv - 0.1).abs() < 0.05, "MIV vs word ≈ 0.1%, got {miv}");
        assert!(
            (tsv13 - 271.7).abs() < 15.0,
            "TSV1.3 vs word ≈ 272%, got {tsv13}"
        );
    }

    #[test]
    fn areas_scale_with_node() {
        let a15 = RefCell::Adder32.area_um2(&TechnologyNode::n15());
        let a22 = RefCell::Adder32.area_um2(&TechnologyNode::n22());
        assert!((a15 - 77.7).abs() < 0.1);
        assert!(a22 > a15);
    }
}
