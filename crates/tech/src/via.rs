//! Inter-layer vias: monolithic inter-layer vias (MIVs) and through-silicon
//! vias (TSVs).
//!
//! Reproduces the physical dimensions and electrical characteristics of the
//! paper's Table 2, and the keep-out-zone (KOZ) area accounting behind Table 1.
//!
//! | Parameter   | MIV    | TSV (aggressive) | TSV (recent) |
//! |-------------|--------|------------------|--------------|
//! | Diameter    | 50 nm  | 1.3 µm           | 5 µm         |
//! | Via height  | 310 nm | 13 µm            | 25 µm        |
//! | Capacitance | ≈0.1 fF| 2.5 fF           | 37 fF        |
//! | Resistance  | 5.5 Ω  | 100 mΩ           | 20 mΩ        |
//!
//! A TSV additionally requires a keep-out zone; the paper quotes the area of a
//! 1.3 µm TSV plus KOZ as ≈6.25 µm², i.e. an effective side of ≈2.5 µm
//! (a multiplier of ≈1.923 on the diameter). MIVs need no KOZ.

use crate::node::TechnologyNode;

/// Effective-side multiplier that accounts for a TSV's keep-out zone.
///
/// Chosen so that a 1.3 µm TSV occupies (1.923 · 1.3)² ≈ 6.25 µm², the value
/// quoted in Section 2.3.1 of the paper.
pub const TSV_KOZ_SIDE_MULTIPLIER: f64 = 2.5 / 1.3;

/// The kind of vertical interconnect between two device layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViaKind {
    /// Monolithic inter-layer via: ≈50 nm side, no keep-out zone.
    Miv,
    /// Aggressive TSV: 1.3 µm diameter (half the ITRS 2020 projection).
    TsvAggressive,
    /// Most recent research TSV: 5 µm diameter.
    TsvRecent,
}

impl ViaKind {
    /// All via kinds compared in the paper, in Table 1/2 order.
    pub const ALL: [ViaKind; 3] = [ViaKind::Miv, ViaKind::TsvAggressive, ViaKind::TsvRecent];

    /// Short human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ViaKind::Miv => "MIV(50nm)",
            ViaKind::TsvAggressive => "TSV(1.3um)",
            ViaKind::TsvRecent => "TSV(5um)",
        }
    }

    /// Whether this via is a monolithic inter-layer via.
    pub fn is_miv(self) -> bool {
        matches!(self, ViaKind::Miv)
    }
}

impl std::fmt::Display for ViaKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A vertical via with its geometry and electrical characteristics.
///
/// # Example
///
/// ```
/// use m3d_tech::via::{Via, ViaKind};
/// use m3d_tech::node::TechnologyNode;
///
/// let node = TechnologyNode::n15();
/// let miv = Via::miv(&node);
/// assert_eq!(miv.kind, ViaKind::Miv);
/// // No keep-out zone: occupied area equals the drawn area.
/// assert_eq!(miv.occupied_area_um2(), miv.drawn_area_um2());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Via {
    /// Which via family this is.
    pub kind: ViaKind,
    /// Side (MIV, drawn as a square) or diameter (TSV), micrometres.
    pub diameter_um: f64,
    /// Vertical extent of the via, micrometres.
    pub height_um: f64,
    /// Parasitic capacitance, farads.
    pub capacitance_f: f64,
    /// Series resistance, ohms.
    pub resistance_ohm: f64,
}

impl Via {
    /// An MIV whose side equals the pitch of the lowest metal layer —
    /// approximately 50 nm at the 15 nm node, scaled with the node's feature
    /// size elsewhere.
    pub fn miv(node: &TechnologyNode) -> Self {
        let side_um = 0.050 * node.feature_nm / 15.0;
        Self {
            kind: ViaKind::Miv,
            diameter_um: side_um,
            height_um: 0.310,
            capacitance_f: 0.1e-15,
            resistance_ohm: 5.5,
        }
    }

    /// The aggressive 1.3 µm TSV (half the ITRS 2020 diameter projection).
    pub fn tsv_aggressive() -> Self {
        Self {
            kind: ViaKind::TsvAggressive,
            diameter_um: 1.3,
            height_um: 13.0,
            capacitance_f: 2.5e-15,
            resistance_ohm: 0.1,
        }
    }

    /// The most recent research TSV: 5 µm diameter.
    pub fn tsv_recent() -> Self {
        Self {
            kind: ViaKind::TsvRecent,
            diameter_um: 5.0,
            height_um: 25.0,
            capacitance_f: 37.0e-15,
            resistance_ohm: 0.02,
        }
    }

    /// Build the via of the given kind at the given technology node.
    pub fn of_kind(kind: ViaKind, node: &TechnologyNode) -> Self {
        match kind {
            ViaKind::Miv => Self::miv(node),
            ViaKind::TsvAggressive => Self::tsv_aggressive(),
            ViaKind::TsvRecent => Self::tsv_recent(),
        }
    }

    /// Drawn area of the via itself (square for MIV, circumscribed square for
    /// a TSV since routing must avoid the full pitch), square micrometres.
    pub fn drawn_area_um2(&self) -> f64 {
        self.diameter_um * self.diameter_um
    }

    /// Area the via denies to logic, including the keep-out zone for TSVs,
    /// square micrometres. MIVs need no KOZ.
    pub fn occupied_area_um2(&self) -> f64 {
        match self.kind {
            ViaKind::Miv => self.drawn_area_um2(),
            ViaKind::TsvAggressive | ViaKind::TsvRecent => {
                let side = self.diameter_um * TSV_KOZ_SIDE_MULTIPLIER;
                side * side
            }
        }
    }

    /// Elmore delay contribution of this via when inserted in a path that
    /// drives `c_downstream` farads, seconds.
    ///
    /// The via's own capacitance loads the upstream driver (with resistance
    /// `r_driver_ohm`); its resistance adds in series toward the downstream
    /// load.
    pub fn insertion_delay_s(&self, r_driver_ohm: f64, c_downstream: f64) -> f64 {
        0.69 * (r_driver_ohm * self.capacitance_f + self.resistance_ohm * c_downstream)
    }

    /// Energy to switch the via's parasitic capacitance once at `vdd`, joules.
    pub fn switch_energy_j(&self, vdd: f64) -> f64 {
        self.capacitance_f * vdd * vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n15() -> TechnologyNode {
        TechnologyNode::n15()
    }

    #[test]
    fn miv_matches_table2() {
        let v = Via::miv(&n15());
        assert!((v.diameter_um - 0.050).abs() < 1e-12);
        assert!((v.height_um - 0.310).abs() < 1e-12);
        assert!((v.capacitance_f - 0.1e-15).abs() < 1e-20);
        assert!((v.resistance_ohm - 5.5).abs() < 1e-12);
    }

    #[test]
    fn tsv_aggressive_occupies_6_25_um2() {
        let v = Via::tsv_aggressive();
        assert!((v.occupied_area_um2() - 6.25).abs() < 0.01);
    }

    #[test]
    fn miv_has_no_koz() {
        let v = Via::miv(&n15());
        assert_eq!(v.occupied_area_um2(), v.drawn_area_um2());
    }

    #[test]
    fn miv_far_smaller_than_tsv() {
        let miv = Via::miv(&n15());
        let tsv = Via::tsv_aggressive();
        // Orders of magnitude: paper says MIV diameter is ~2 orders finer.
        assert!(tsv.occupied_area_um2() / miv.occupied_area_um2() > 1000.0);
    }

    #[test]
    fn tsv_capacitance_dominates_miv() {
        let miv = Via::miv(&n15());
        assert!(Via::tsv_aggressive().capacitance_f > 10.0 * miv.capacitance_f);
        assert!(Via::tsv_recent().capacitance_f > 100.0 * miv.capacitance_f);
    }

    #[test]
    fn rc_products_are_comparable() {
        // Paper Section 2.1.2: the overall RC delay of MIV and TSV wires is
        // roughly similar (within ~2 orders), even though C differs by ~25-370x.
        let miv = Via::miv(&n15());
        let tsv = Via::tsv_aggressive();
        let rc_miv = miv.resistance_ohm * miv.capacitance_f;
        let rc_tsv = tsv.resistance_ohm * tsv.capacitance_f;
        let ratio = rc_miv / rc_tsv;
        assert!(ratio > 0.1 && ratio < 100.0, "ratio = {ratio}");
    }

    #[test]
    fn gate_driving_miv_is_much_faster_than_tsv() {
        // Srinivasa et al.: delay of a gate driving an MIV is ~78% lower than
        // one driving a TSV. The driver-load term dominates.
        let node = n15();
        let miv = Via::miv(&node);
        let tsv = Via::tsv_aggressive();
        let r_drv = node.r_inv_min_ohm / 8.0; // an 8x driver
        let c_down = 10.0 * node.c_inv_min_f;
        let d_miv = miv.insertion_delay_s(r_drv, c_down);
        let d_tsv = tsv.insertion_delay_s(r_drv, c_down);
        assert!(d_miv < 0.5 * d_tsv, "miv {d_miv} vs tsv {d_tsv}");
    }

    #[test]
    fn display_labels_match_paper() {
        assert_eq!(ViaKind::Miv.to_string(), "MIV(50nm)");
        assert_eq!(ViaKind::TsvAggressive.to_string(), "TSV(1.3um)");
        assert_eq!(ViaKind::TsvRecent.to_string(), "TSV(5um)");
    }
}
