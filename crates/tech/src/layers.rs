//! Physical layer stacks for thermal modeling (paper Table 10).
//!
//! A stack is an ordered list of material layers from the **heat sink at the
//! top** down to the bottom silicon. Device layers (where power is dissipated)
//! are flagged so the thermal solver can inject heat there.
//!
//! | Layer          | M3D      | TSV3D   | k (W/m·K) |
//! |----------------|----------|---------|-----------|
//! | Top metal      | 12 µm    | 12 µm   | 12        |
//! | Top silicon    | 100 nm   | 20 µm   | 120       |
//! | ILD            | 100 nm   | 20 µm   | 1.5       |
//! | Bottom metal   | <1 µm    | 12 µm   | 12        |
//! | Bottom silicon | 100 µm   | 100 µm  | 120       |
//! | TIM            | 50 µm    | 50 µm   | 5         |
//! | IHS            | 1 mm     | 1 mm    | 400       |
//! | Heat sink      | 7 mm     | 7 mm    | 400       |

/// One material layer of a chip stack.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterialLayer {
    /// Human-readable name ("TIM", "Top Silicon", ...).
    pub name: &'static str,
    /// Thickness in metres.
    pub thickness_m: f64,
    /// Thermal conductivity in W/(m·K).
    pub conductivity_w_mk: f64,
    /// Whether transistors (heat sources) live in this layer.
    pub is_device_layer: bool,
}

impl MaterialLayer {
    /// Vertical thermal resistance of a column of this layer with footprint
    /// `area_m2`, in K/W.
    pub fn vertical_resistance_k_per_w(&self, area_m2: f64) -> f64 {
        self.thickness_m / (self.conductivity_w_mk * area_m2)
    }
}

/// The 3D integration style of a chip stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackKind {
    /// Planar 2D chip (single device layer).
    Planar2d,
    /// Monolithic 3D (two device layers, sub-µm apart).
    M3d,
    /// TSV-based die stacking (two device layers, tens of µm apart).
    Tsv3d,
}

/// An ordered chip stack, **heat sink first** (index 0 is closest to ambient).
#[derive(Debug, Clone, PartialEq)]
pub struct LayerStack {
    /// Which integration style this stack represents.
    pub kind: StackKind,
    /// Layers ordered from heat sink (ambient side) to the bottom of the chip.
    pub layers: Vec<MaterialLayer>,
}

/// Convection resistance of the heat sink to ambient, K/W.
///
/// A typical forced-air sink for a desktop part; combined with the paper's
/// 6.4 W per-core power this yields realistic 50–80 °C core temperatures.
pub const HEAT_SINK_TO_AMBIENT_K_PER_W: f64 = 0.45;

fn common_top() -> Vec<MaterialLayer> {
    vec![
        MaterialLayer {
            name: "Heat Sink",
            thickness_m: 7.0e-3,
            conductivity_w_mk: 400.0,
            is_device_layer: false,
        },
        MaterialLayer {
            name: "IHS",
            thickness_m: 1.0e-3,
            conductivity_w_mk: 400.0,
            is_device_layer: false,
        },
        MaterialLayer {
            name: "TIM",
            thickness_m: 50.0e-6,
            conductivity_w_mk: 5.0,
            is_device_layer: false,
        },
    ]
}

impl LayerStack {
    /// The two-device-layer monolithic 3D stack of Table 10.
    ///
    /// Note the orientation: when the chip is on the board the heat sink is at
    /// the top and the *bottom* (high-performance) silicon layer is furthest
    /// from it only by the package; within the stack the top device layer sits
    /// ~1 µm above the bottom one.
    pub fn m3d() -> Self {
        let mut layers = common_top();
        layers.extend([
            // Bulk silicon of the *bottom-fabricated* device layer faces the
            // TIM when flip-chip mounted; the paper's Figure 1 shows the heat
            // sink above the bottom bulk Si.
            MaterialLayer {
                name: "Bottom Bulk Si",
                thickness_m: 100.0e-6,
                conductivity_w_mk: 120.0,
                is_device_layer: true,
            },
            MaterialLayer {
                name: "Bottom Metal",
                thickness_m: 1.0e-6,
                conductivity_w_mk: 12.0,
                is_device_layer: false,
            },
            MaterialLayer {
                name: "ILD",
                thickness_m: 100.0e-9,
                conductivity_w_mk: 1.5,
                is_device_layer: false,
            },
            MaterialLayer {
                name: "Top Si",
                thickness_m: 100.0e-9,
                conductivity_w_mk: 120.0,
                is_device_layer: true,
            },
            MaterialLayer {
                name: "Top Metal",
                thickness_m: 12.0e-6,
                conductivity_w_mk: 12.0,
                is_device_layer: false,
            },
        ]);
        Self {
            kind: StackKind::M3d,
            layers,
        }
    }

    /// The TSV-based die-stacked alternative of Table 10 (aggressively thinned
    /// 20 µm top die, favourable to TSV3D).
    pub fn tsv3d() -> Self {
        let mut layers = common_top();
        layers.extend([
            MaterialLayer {
                name: "Bottom Bulk Si",
                thickness_m: 100.0e-6,
                conductivity_w_mk: 120.0,
                is_device_layer: true,
            },
            MaterialLayer {
                name: "Bottom Metal",
                thickness_m: 12.0e-6,
                conductivity_w_mk: 12.0,
                is_device_layer: false,
            },
            // Die-to-die bond layer: the thermally resistive ILD equivalent.
            MaterialLayer {
                name: "D2D/ILD",
                thickness_m: 20.0e-6,
                conductivity_w_mk: 1.5,
                is_device_layer: false,
            },
            MaterialLayer {
                name: "Top Si",
                thickness_m: 20.0e-6,
                conductivity_w_mk: 120.0,
                is_device_layer: true,
            },
            MaterialLayer {
                name: "Top Metal",
                thickness_m: 12.0e-6,
                conductivity_w_mk: 12.0,
                is_device_layer: false,
            },
        ]);
        Self {
            kind: StackKind::Tsv3d,
            layers,
        }
    }

    /// A conventional planar 2D stack (single device layer).
    pub fn planar_2d() -> Self {
        let mut layers = common_top();
        layers.extend([
            MaterialLayer {
                name: "Bulk Si",
                thickness_m: 100.0e-6,
                conductivity_w_mk: 120.0,
                is_device_layer: true,
            },
            MaterialLayer {
                name: "Metal",
                thickness_m: 12.0e-6,
                conductivity_w_mk: 12.0,
                is_device_layer: false,
            },
        ]);
        Self {
            kind: StackKind::Planar2d,
            layers,
        }
    }

    /// Indices (into `layers`) of the device layers, ordered sink-first.
    pub fn device_layer_indices(&self) -> Vec<usize> {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_device_layer)
            .map(|(i, _)| i)
            .collect()
    }

    /// Vertical thermal resistance between the two device layers for a column
    /// of footprint `area_m2`, K/W. Returns `None` for a planar stack.
    ///
    /// This is the quantity that makes M3D thermally benign (sub-µm ILD) and
    /// TSV3D problematic (tens of µm of low-k bond material).
    pub fn interlayer_resistance_k_per_w(&self, area_m2: f64) -> Option<f64> {
        let dev = self.device_layer_indices();
        if dev.len() < 2 {
            return None;
        }
        // Half of each device layer plus everything in between.
        let (a, b) = (dev[0], dev[1]);
        let mut r = 0.5 * self.layers[a].vertical_resistance_k_per_w(area_m2)
            + 0.5 * self.layers[b].vertical_resistance_k_per_w(area_m2);
        for l in &self.layers[a + 1..b] {
            r += l.vertical_resistance_k_per_w(area_m2);
        }
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m3d_has_two_device_layers_under_1um_apart() {
        let s = LayerStack::m3d();
        let dev = s.device_layer_indices();
        assert_eq!(dev.len(), 2);
        let between: f64 = s.layers[dev[0] + 1..dev[1]]
            .iter()
            .map(|l| l.thickness_m)
            .sum();
        assert!(between < 1.5e-6, "device layers {between} m apart");
    }

    #[test]
    fn tsv3d_interlayer_resistance_much_higher_than_m3d() {
        let a = 1e-6; // 1 mm^2 in m^2
        let m3d = LayerStack::m3d().interlayer_resistance_k_per_w(a).unwrap();
        let tsv = LayerStack::tsv3d().interlayer_resistance_k_per_w(a).unwrap();
        // Paper: D2D layers have ~13-16x higher thermal resistance; the full
        // inter-layer path in TSV3D ends up >10x worse than in M3D.
        assert!(tsv > 10.0 * m3d, "tsv {tsv} vs m3d {m3d}");
    }

    #[test]
    fn planar_has_single_device_layer() {
        let s = LayerStack::planar_2d();
        assert_eq!(s.device_layer_indices().len(), 1);
        assert!(s.interlayer_resistance_k_per_w(1e-6).is_none());
    }

    #[test]
    fn stacks_start_at_heat_sink() {
        for s in [LayerStack::m3d(), LayerStack::tsv3d(), LayerStack::planar_2d()] {
            assert_eq!(s.layers[0].name, "Heat Sink");
        }
    }

    #[test]
    fn material_resistance_formula() {
        let l = MaterialLayer {
            name: "x",
            thickness_m: 1e-3,
            conductivity_w_mk: 100.0,
            is_device_layer: false,
        };
        // R = t/(kA) = 1e-3/(100 * 1e-4) = 0.1 K/W
        assert!((l.vertical_resistance_k_per_w(1e-4) - 0.1).abs() < 1e-12);
    }
}
