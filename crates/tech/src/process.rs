//! Process corners for the layers of an M3D stack.
//!
//! The bottom layer of an M3D chip is fabricated with a conventional
//! high-temperature, high-performance process. Any layer above it must be
//! processed at low temperature (laser-scan annealing), which degrades device
//! performance: Shi et al. estimate a top-layer inverter is **17% slower**;
//! Rajendran et al. measured 27.8% (PMOS) / 16.8% (NMOS) degradation.
//! Alternatively, the top layer can deliberately use a low-power FDSOI process
//! (Section 5 of the paper).

/// A transistor process available to an M3D layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessCorner {
    /// Multiplier on intrinsic gate delay relative to bulk high-performance
    /// (1.0 = no penalty).
    pub delay_factor: f64,
    /// Multiplier on dynamic switching energy.
    pub dynamic_factor: f64,
    /// Multiplier on leakage power.
    pub leakage_factor: f64,
    /// Short label for reports.
    pub name: &'static str,
}

impl ProcessCorner {
    /// Bulk high-performance process (the bottom layer, and all of a 2D chip).
    pub fn bulk_hp() -> Self {
        Self {
            delay_factor: 1.0,
            dynamic_factor: 1.0,
            leakage_factor: 1.0,
            name: "bulk-HP",
        }
    }

    /// Low-temperature-processed top layer: 17% slower inverter (Shi et al.),
    /// same dynamic energy, slightly lower leakage (higher effective Vt).
    pub fn top_layer_degraded() -> Self {
        Self {
            delay_factor: 1.17,
            dynamic_factor: 1.0,
            leakage_factor: 0.9,
            name: "top-LT",
        }
    }

    /// A pessimistic top layer using the worst measured device degradation
    /// (27.8%, PMOS-limited).
    pub fn top_layer_pessimistic() -> Self {
        Self {
            delay_factor: 1.278,
            dynamic_factor: 1.0,
            leakage_factor: 0.9,
            name: "top-LT-pess",
        }
    }

    /// FDSOI low-power process: slower but much lower leakage and somewhat
    /// lower dynamic energy (Section 5 / Section 7.1.2 of the paper).
    pub fn fdsoi_lp() -> Self {
        Self {
            delay_factor: 1.30,
            dynamic_factor: 0.85,
            leakage_factor: 0.25,
            name: "FDSOI-LP",
        }
    }

    /// A hypothetical future iso-performance top layer.
    pub fn iso_top() -> Self {
        Self {
            delay_factor: 1.0,
            dynamic_factor: 1.0,
            leakage_factor: 1.0,
            name: "iso-top",
        }
    }
}

impl Default for ProcessCorner {
    fn default() -> Self {
        Self::bulk_hp()
    }
}

/// The pair of processes assigned to the two layers of an M3D stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerProcesses {
    /// Bottom (high-performance) layer process.
    pub bottom: ProcessCorner,
    /// Top (sequentially fabricated) layer process.
    pub top: ProcessCorner,
}

impl LayerProcesses {
    /// The hypothetical iso-performance M3D stack (Section 3 of the paper).
    pub fn iso() -> Self {
        Self {
            bottom: ProcessCorner::bulk_hp(),
            top: ProcessCorner::iso_top(),
        }
    }

    /// The realistic hetero-layer M3D stack: degraded top layer (Section 4).
    pub fn hetero() -> Self {
        Self {
            bottom: ProcessCorner::bulk_hp(),
            top: ProcessCorner::top_layer_degraded(),
        }
    }

    /// HP bottom + LP FDSOI top for maximum energy efficiency (Section 5).
    pub fn hp_plus_lp() -> Self {
        Self {
            bottom: ProcessCorner::bulk_hp(),
            top: ProcessCorner::fdsoi_lp(),
        }
    }

    /// How much slower the top layer is than the bottom (e.g. 0.17 = 17%).
    pub fn top_slowdown(&self) -> f64 {
        self.top.delay_factor / self.bottom.delay_factor - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hetero_top_is_17pct_slower() {
        let p = LayerProcesses::hetero();
        assert!((p.top_slowdown() - 0.17).abs() < 1e-12);
    }

    #[test]
    fn iso_has_no_slowdown() {
        assert_eq!(LayerProcesses::iso().top_slowdown(), 0.0);
    }

    #[test]
    fn fdsoi_trades_delay_for_leakage() {
        let lp = ProcessCorner::fdsoi_lp();
        let hp = ProcessCorner::bulk_hp();
        assert!(lp.delay_factor > hp.delay_factor);
        assert!(lp.leakage_factor < 0.5 * hp.leakage_factor);
    }

    #[test]
    fn default_is_bulk_hp() {
        assert_eq!(ProcessCorner::default(), ProcessCorner::bulk_hp());
    }
}
