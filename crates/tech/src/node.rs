//! Per-node electrical parameters.
//!
//! The paper models SRAM structures at 22 nm (a conservative choice), logic
//! synthesis experiments at 45 nm, and reference layouts at 15 nm. A
//! [`TechnologyNode`] captures everything the analytical timing/energy models
//! need at one node. Parameters are derived from standard first-order scaling
//! rules (FO4 delay ∝ feature size, wire resistance ∝ 1/F², wire capacitance
//! roughly constant per unit length) anchored to widely published 22 nm values.

/// Electrical and geometric parameters of a CMOS technology node.
///
/// All delays are in seconds, capacitances in farads, resistances in ohms,
/// lengths in metres, unless a unit suffix says otherwise.
///
/// # Example
///
/// ```
/// use m3d_tech::node::TechnologyNode;
///
/// let n = TechnologyNode::n22();
/// assert_eq!(n.feature_nm, 22.0);
/// // FO4 delay at 22 nm is on the order of 13 ps.
/// assert!(n.fo4_delay_s > 10e-12 && n.fo4_delay_s < 17e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyNode {
    /// Feature size (half pitch), nanometres.
    pub feature_nm: f64,
    /// Nominal supply voltage, volts. 0.8 V at 22 nm per ITRS, as used by the
    /// paper (Section 6).
    pub vdd: f64,
    /// Fan-out-of-4 inverter delay, seconds.
    pub fo4_delay_s: f64,
    /// Intrinsic time constant `tau` of a minimum inverter driving its own
    /// input capacitance, seconds. The FO4 delay is roughly `5 * tau`.
    pub tau_s: f64,
    /// Input capacitance of a minimum-size inverter, farads.
    pub c_inv_min_f: f64,
    /// Effective drive resistance of a minimum-size inverter, ohms.
    pub r_inv_min_ohm: f64,
    /// Drain (diffusion) capacitance a minimum-size transistor presents to a
    /// bitline, farads.
    pub c_drain_min_f: f64,
    /// Semi-global (intermediate metal) wire resistance per micrometre, ohms.
    pub wire_r_per_um: f64,
    /// Local/intermediate metal wire capacitance per micrometre, farads.
    pub wire_c_per_um: f64,
    /// Leakage power density of active logic, watts per square millimetre.
    pub leakage_w_per_mm2: f64,
}

impl TechnologyNode {
    /// Construct a node by first-order scaling from the 22 nm anchor.
    ///
    /// # Panics
    ///
    /// Panics if `feature_nm` is not a positive, finite value.
    pub fn from_feature_nm(feature_nm: f64) -> Self {
        assert!(
            feature_nm.is_finite() && feature_nm > 0.0,
            "feature size must be positive and finite, got {feature_nm}"
        );
        let s = feature_nm / 22.0;
        // FO4 ~ 0.6 ps per nm of feature size (classic rule of thumb).
        let fo4 = 0.6e-12 * feature_nm;
        let tau = fo4 / 5.0;
        // Minimum inverter input capacitance scales linearly with feature size.
        let c_inv = 0.08e-15 * s;
        Self {
            feature_nm,
            vdd: 0.8,
            fo4_delay_s: fo4,
            tau_s: tau,
            c_inv_min_f: c_inv,
            r_inv_min_ohm: tau / c_inv,
            c_drain_min_f: 0.03e-15 * s,
            // Wire cross-section shrinks as F^2, so resistance grows as 1/s^2.
            wire_r_per_um: 6.0 / (s * s),
            // Capacitance per unit length is roughly node-independent.
            wire_c_per_um: 0.22e-15,
            // Leakage density grows slowly as features shrink.
            leakage_w_per_mm2: 80.0e-3 / s,
        }
    }

    /// The 45 nm node used for the paper's logic synthesis experiments.
    pub fn n45() -> Self {
        Self::from_feature_nm(45.0)
    }

    /// The 22 nm node used for the paper's SRAM/CAM modeling (conservative).
    pub fn n22() -> Self {
        Self::from_feature_nm(22.0)
    }

    /// The 15 nm node used for the paper's via-overhead comparisons.
    pub fn n15() -> Self {
        Self::from_feature_nm(15.0)
    }

    /// Resistance per micrometre of minimum-pitch local metal (array
    /// wordlines/bitlines), ohms. Local wires are roughly 2x more resistive
    /// than the intermediate metal used for routing.
    pub fn local_wire_r_per_um(&self) -> f64 {
        2.0 * self.wire_r_per_um
    }

    /// Length of `n` feature sizes, in micrometres.
    pub fn f_to_um(&self, n: f64) -> f64 {
        n * self.feature_nm * 1e-3
    }

    /// Area of `n` square feature sizes, in square micrometres.
    pub fn f2_to_um2(&self, n: f64) -> f64 {
        let f_um = self.feature_nm * 1e-3;
        n * f_um * f_um
    }

    /// Dynamic switching energy of a capacitance `c` (farads) at this node's
    /// supply, joules (`C · Vdd²`).
    pub fn switch_energy_j(&self, c: f64) -> f64 {
        c * self.vdd * self.vdd
    }
}

impl Default for TechnologyNode {
    fn default() -> Self {
        Self::n22()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_values_at_22nm() {
        let n = TechnologyNode::n22();
        assert!((n.fo4_delay_s - 13.2e-12).abs() < 1e-15);
        assert!((n.vdd - 0.8).abs() < 1e-12);
        assert!((n.wire_r_per_um - 6.0).abs() < 1e-9);
    }

    #[test]
    fn fo4_scales_linearly() {
        let a = TechnologyNode::n45();
        let b = TechnologyNode::n22();
        let ratio = a.fo4_delay_s / b.fo4_delay_s;
        assert!((ratio - 45.0 / 22.0).abs() < 1e-9);
    }

    #[test]
    fn wire_resistance_scales_inverse_square() {
        let a = TechnologyNode::n45();
        let b = TechnologyNode::n22();
        assert!(a.wire_r_per_um < b.wire_r_per_um);
        let ratio = b.wire_r_per_um / a.wire_r_per_um;
        let expect = (45.0f64 / 22.0).powi(2);
        assert!((ratio - expect).abs() < 1e-9);
    }

    #[test]
    fn tau_times_five_is_fo4() {
        let n = TechnologyNode::n22();
        assert!((n.tau_s * 5.0 - n.fo4_delay_s).abs() < 1e-18);
    }

    #[test]
    fn unit_helpers_round_trip() {
        let n = TechnologyNode::n22();
        // 1000 F at 22 nm = 22 um.
        assert!((n.f_to_um(1000.0) - 22.0).abs() < 1e-9);
        // 1e6 F^2 at 22 nm = (0.022 um)^2 * 1e6 = 484 um^2.
        assert!((n.f2_to_um2(1.0e6) - 484.0).abs() < 1e-6);
    }

    #[test]
    fn switch_energy_is_cv2() {
        let n = TechnologyNode::n22();
        let e = n.switch_energy_j(1e-15);
        assert!((e - 0.64e-15).abs() < 1e-20);
    }

    #[test]
    #[should_panic(expected = "feature size must be positive")]
    fn rejects_nonpositive_feature() {
        let _ = TechnologyNode::from_feature_nm(0.0);
    }
}
