//! Wire delay helpers: Elmore distributed-RC delay and optimally repeated
//! wires.
//!
//! Two regimes matter for the partitioning study:
//!
//! * **Unrepeated wires** (wordlines, bitlines, short semi-global hops):
//!   delay grows *quadratically* with length — this is why halving a wordline
//!   through bit partitioning is so effective.
//! * **Repeated wires** (H-trees, bypass buses, NoC links): delay grows
//!   *linearly* with length once repeaters are inserted at the optimal pitch.

use crate::node::TechnologyNode;

/// Elmore delay of an unrepeated distributed RC wire of length `len_um`
/// driven by a source with resistance `r_drv` into a lumped load `c_load`.
///
/// `t = 0.69·R_drv·(C_wire + C_load) + 0.38·R_wire·C_wire + 0.69·R_wire·C_load`
pub fn elmore_delay_s(node: &TechnologyNode, r_drv: f64, len_um: f64, c_load: f64) -> f64 {
    let r_w = node.wire_r_per_um * len_um;
    let c_w = node.wire_c_per_um * len_um;
    0.69 * r_drv * (c_w + c_load) + 0.38 * r_w * c_w + 0.69 * r_w * c_load
}

/// Delay per micrometre of an optimally repeated wire at this node, seconds.
///
/// The classic result: `t/L = sqrt(2 · r · c · tau_buf)` where `tau_buf` is
/// the intrinsic buffer time constant.
pub fn repeated_delay_per_um_s(node: &TechnologyNode) -> f64 {
    (2.0 * node.wire_r_per_um * node.wire_c_per_um * node.tau_s).sqrt()
}

/// Total delay of an optimally repeated wire of `len_um`, seconds.
pub fn repeated_wire_delay_s(node: &TechnologyNode, len_um: f64) -> f64 {
    repeated_delay_per_um_s(node) * len_um
}

/// Switching energy of a wire of `len_um` (plus repeater overhead factor of
/// ~30% when `repeated`), joules per transition.
pub fn wire_energy_j(node: &TechnologyNode, len_um: f64, repeated: bool) -> f64 {
    let c = node.wire_c_per_um * len_um;
    let overhead = if repeated { 1.3 } else { 1.0 };
    node.switch_energy_j(c) * overhead
}

/// Size (in multiples of a minimum inverter) of a driver that makes its own
/// delay into a capacitive load roughly one FO4: a simple sizing heuristic
/// used by the array model.
pub fn driver_size_for_load(node: &TechnologyNode, c_load: f64) -> f64 {
    (c_load / (4.0 * node.c_inv_min_f)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n22() -> TechnologyNode {
        TechnologyNode::n22()
    }

    #[test]
    fn unrepeated_delay_superlinear_in_length() {
        let node = n22();
        let d1 = elmore_delay_s(&node, 1000.0, 100.0, 1e-15);
        let d2 = elmore_delay_s(&node, 1000.0, 200.0, 1e-15);
        // Doubling length should more than double delay (quadratic wire term).
        assert!(d2 > 2.0 * d1 * 0.99, "d1={d1} d2={d2}");
        // And the pure-wire part is 4x.
        let w1 = 0.38 * node.wire_r_per_um * 100.0 * node.wire_c_per_um * 100.0;
        let w2 = 0.38 * node.wire_r_per_um * 200.0 * node.wire_c_per_um * 200.0;
        assert!((w2 / w1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_delay_linear_in_length() {
        let node = n22();
        let d1 = repeated_wire_delay_s(&node, 100.0);
        let d2 = repeated_wire_delay_s(&node, 200.0);
        assert!((d2 / d1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_velocity_is_plausible() {
        // ~0.03-0.2 ps/um at 22nm.
        let v = repeated_delay_per_um_s(&n22());
        assert!(v > 0.02e-12 && v < 0.3e-12, "v = {v}");
    }

    #[test]
    fn long_unrepeated_wire_slower_than_repeated() {
        let node = n22();
        let len = 2000.0;
        let unrep = elmore_delay_s(&node, node.r_inv_min_ohm / 64.0, len, 0.0);
        let rep = repeated_wire_delay_s(&node, len);
        assert!(unrep > rep, "unrepeated {unrep} vs repeated {rep}");
    }

    #[test]
    fn wire_energy_scales_with_length() {
        let node = n22();
        let e1 = wire_energy_j(&node, 10.0, false);
        let e2 = wire_energy_j(&node, 20.0, false);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!(wire_energy_j(&node, 10.0, true) > e1);
    }

    #[test]
    fn driver_sizing_floors_at_one() {
        let node = n22();
        assert_eq!(driver_size_for_load(&node, 0.0), 1.0);
        assert!(driver_size_for_load(&node, 100.0 * node.c_inv_min_f) > 1.0);
    }
}
