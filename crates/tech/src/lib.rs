//! Technology substrate for the M3D vertical-processor study.
//!
//! This crate provides the device- and interconnect-level parameters that every
//! higher-level model in the workspace consumes:
//!
//! * [`node::TechnologyNode`] — per-node electrical parameters (FO4 delay, wire
//!   RC, gate/drain capacitances, supply voltage, leakage density).
//! * [`via`] — monolithic inter-layer vias (MIVs) and through-silicon vias
//!   (TSVs), with the geometry and electrical characteristics of Tables 1 and 2
//!   of the paper.
//! * [`refcells`] — reference layout areas (FO1 inverter, 6T SRAM bitcell,
//!   32-bit adder, 32-bit SRAM word) used by the paper's Figure 2 and Table 1.
//! * [`process`] — process corners for the two M3D layers: bulk
//!   high-performance, FDSOI low-power, and the degraded low-temperature top
//!   layer (+17% inverter delay, per Shi et al.).
//! * [`wire`] — Elmore and repeated-wire delay helpers.
//! * [`layers`] — physical layer stacks (M3D, TSV3D, planar 2D) with the
//!   thicknesses and thermal conductivities of Table 10, consumed by the
//!   thermal solver.
//!
//! # Example
//!
//! ```
//! use m3d_tech::node::TechnologyNode;
//! use m3d_tech::via::Via;
//!
//! let node = TechnologyNode::n22();
//! let miv = Via::miv(&node);
//! let tsv = Via::tsv_aggressive();
//! // An MIV occupies orders of magnitude less area than a TSV.
//! assert!(miv.occupied_area_um2() * 1000.0 < tsv.occupied_area_um2());
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod layers;
pub mod node;
pub mod process;
pub mod refcells;
pub mod via;
pub mod wire;

pub use node::TechnologyNode;
pub use process::ProcessCorner;
pub use via::{Via, ViaKind};
