//! Offline shim for the `rand` crate.
//!
//! The build sandbox has no crates.io access, so this workspace vendors the
//! small subset of the rand 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen::<f64>()`, `gen::<bool>()`, `gen::<u64>()` and `gen_range(a..b)`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the ChaCha12
//! stream of the real `StdRng`, so random sequences differ from upstream rand,
//! but they are deterministic per seed and of high statistical quality, which
//! is all the synthetic trace generators and tests rely on.

#![warn(missing_docs)]

use core::ops::Range;

/// Types that can seed themselves from a single `u64` (rand-compatible
/// subset of the real trait).
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values samplable uniformly from all bit patterns ("standard" distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased-enough range sampling via 128-bit multiply-shift.
fn mul_shift(rng_word: u64, span: u64) -> u64 {
    ((rng_word as u128 * span as u128) >> 64) as u64
}

impl SampleUniform for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + mul_shift(rng.next_u64(), hi - lo)
    }
}

impl SampleUniform for usize {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + mul_shift(rng.next_u64(), (hi - lo) as u64) as usize
    }
}

impl SampleUniform for u32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + mul_shift(rng.next_u64(), (hi - lo) as u64) as u32
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience extension methods over any [`RngCore`], mirroring rand 0.8.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Unlike the real rand crate's ChaCha12-based `StdRng`, the sequences
    /// are not cryptographic — they only need to be reproducible and
    /// statistically uniform.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, per
            // the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0usize..3);
            assert!(w < 3);
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn bools_are_balanced() {
        let mut r = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_600..5_400).contains(&heads), "{heads} heads");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(0);
        let _ = r.gen_range(5u64..5);
    }
}
