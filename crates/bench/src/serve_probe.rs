//! The `perf_baseline` serve probe: warm-daemon vs cold-process `sim`
//! throughput, plus a connections-≫-workers load tier.
//!
//! The probe answers two questions. First: *what does keeping the daemon
//! (and its memo cache) warm actually buy over spawning a fresh process
//! per query?* It spawns the sibling `serve` binary twice:
//!
//! * **warm** — one daemon on an ephemeral port, one connection, a
//!   closed-loop stream of single-point `sim` queries drawn from a small
//!   fixed pool, so after the first pass every query is a memo-cache hit;
//! * **cold** — `serve --oneshot` once per query (stdin/stdout, no TCP),
//!   the honest "no daemon" baseline: every query pays process start-up,
//!   engine construction and an uncached simulation.
//!
//! Second: *does the single-threaded event loop hold up when connections
//! vastly outnumber workers?* The **load** phase points [`LOAD_CONNS`]
//! concurrent closed-loop clients at a daemon restricted to
//! [`LOAD_WORKERS`] workers, over the same warmed pool, and records
//! aggregate throughput plus p50/p99 request latency. Since every request
//! is a cache hit, those numbers isolate the connection plumbing —
//! accept, line framing, mailbox handoff, write backlog — from
//! simulation cost.
//!
//! Third: *what does the shard router cost over a single daemon?* The
//! **shard** phase runs the same closed loop against `serve --shards
//! `[`SHARD_COUNT`] — a router process fronting spawned shard daemons —
//! and records throughput plus p50/p99 latency, along with the router's
//! own `serve.*` counters (which include the `serve.shard_*` family:
//! sub-requests fanned out, deaths, re-routes).
//!
//! All phases run `--quick --jobs 1`. The numbers are wall-clock and
//! machine-dependent, so the resulting `serve_probe` block in
//! `BENCH_repro.json` is informational and never gated — unlike the
//! `serve.*` counters it also captures, which CI greps for presence.
//!
//! This module deliberately does **not** depend on `m3d-serve` (the
//! workspace keeps `bench` below `serve` in the crate DAG); it speaks the
//! documented NDJSON grammar directly and finds the `serve` binary next
//! to the running `perf_baseline` executable.

use m3d_core::report::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Requests timed in the warm (daemon) phase.
pub const WARM_REQUESTS: usize = 60;

/// Process spawns timed in the cold (oneshot) phase.
pub const COLD_REQUESTS: usize = 5;

/// Concurrent connections in the load phase — deliberately far above
/// [`LOAD_WORKERS`] so the probe exercises the event loop's fan-in, not
/// the worker pool.
pub const LOAD_CONNS: usize = 128;

/// Worker threads the load-phase daemon is started with.
pub const LOAD_WORKERS: usize = 2;

/// Closed-loop requests each load-phase connection issues.
pub const LOAD_REQUESTS_PER_CONN: usize = 8;

/// Shard daemons behind the router in the shard phase (`--shards N`).
pub const SHARD_COUNT: usize = 2;

/// Closed-loop requests timed in the shard phase.
pub const SHARD_REQUESTS: usize = 60;

/// The fixed point pool: small enough that the warm phase is cache-hit
/// dominated after one pass, varied enough to exercise distinct warm keys.
const POOL_APPS: [&str; 3] = ["Gcc", "Mcf", "Bzip2"];
const POOL_SEEDS: [u64; 2] = [0, 1];

/// One serve-probe measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeProbe {
    /// Closed-loop requests answered per second by the warm daemon.
    pub warm_rps: f64,
    /// Queries per second when every query spawns a fresh `--oneshot`
    /// process.
    pub cold_rps: f64,
    /// Aggregate throughput of the [`LOAD_CONNS`]-connection load phase.
    pub load_rps: f64,
    /// Median request latency in the load phase, microseconds.
    pub load_p50_us: u64,
    /// 99th-percentile request latency in the load phase, microseconds.
    pub load_p99_us: u64,
    /// Closed-loop requests per second through the [`SHARD_COUNT`]-shard
    /// router.
    pub shard_rps: f64,
    /// Median request latency in the shard phase, microseconds.
    pub shard_p50_us: u64,
    /// 99th-percentile request latency in the shard phase, microseconds.
    pub shard_p99_us: u64,
    /// `serve.*` counters from the router's final `stats` answer
    /// (includes the `serve.shard_*` family).
    pub shard_counters: Vec<(String, u64)>,
    /// `serve.*` counters from the warm daemon's final `stats` answer.
    pub counters: Vec<(String, u64)>,
}

impl ServeProbe {
    /// Warm-over-cold throughput ratio.
    pub fn speedup(&self) -> f64 {
        if self.cold_rps > 0.0 {
            self.warm_rps / self.cold_rps
        } else {
            0.0
        }
    }
}

fn sim_line(id: usize, app: &str, seed: u64) -> String {
    Json::obj([
        ("id", Json::from(id as i64)),
        ("method", Json::from("sim")),
        (
            "params",
            Json::obj([
                ("app", Json::from(app)),
                ("design", Json::from("Base")),
                ("seed", Json::from(seed)),
                ("warmup", Json::from(3_000u64)),
                ("measure", Json::from(2_000u64)),
            ]),
        ),
    ])
    .render_compact()
}

fn pool_point(k: usize) -> (&'static str, u64) {
    (
        POOL_APPS[k % POOL_APPS.len()],
        POOL_SEEDS[(k / POOL_APPS.len()) % POOL_SEEDS.len()],
    )
}

fn serve_binary() -> Result<PathBuf, String> {
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let dir = me
        .parent()
        .ok_or_else(|| "executable has no parent directory".to_owned())?;
    let path = dir.join(format!("serve{}", std::env::consts::EXE_SUFFIX));
    if path.is_file() {
        Ok(path)
    } else {
        Err(format!(
            "serve binary not found at {} (build it with `cargo build --release -p m3d-serve`)",
            path.display()
        ))
    }
}

/// Kill-on-drop guard so a failing probe never leaks a daemon.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn expect_ok(line: &str) -> Result<Json, String> {
    let j = Json::parse(line).map_err(|e| format!("unparsable reply `{line}`: {e}"))?;
    match j.get("ok") {
        Some(Json::Bool(true)) => Ok(j),
        _ => Err(format!("serve answered an error: {line}")),
    }
}

/// Spawn the daemon on an ephemeral port and wait for its port file.
/// `label` keeps concurrent phases' port files distinct; `extra` is
/// appended after the common `--quick --jobs 1 --addr 127.0.0.1:0`.
fn spawn_daemon(serve: &PathBuf, label: &str, extra: &[&str]) -> Result<(ChildGuard, String), String> {
    let port_file = std::env::temp_dir().join(format!(
        "m3d_serve_probe_{}_{label}.port",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&port_file);
    let child = Command::new(serve)
        .args(["--quick", "--jobs", "1", "--addr", "127.0.0.1:0"])
        .args(extra)
        .arg("--port-file")
        .arg(&port_file)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", serve.display()))?;
    let mut child = ChildGuard(child);

    let deadline = Instant::now() + Duration::from_secs(20);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            let text = text.trim().to_owned();
            if !text.is_empty() {
                break text;
            }
        }
        if let Ok(Some(status)) = child.0.try_wait() {
            return Err(format!("serve exited before listening: {status}"));
        }
        if Instant::now() >= deadline {
            return Err("serve did not write its port file within 20s".to_owned());
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    let _ = std::fs::remove_file(&port_file);
    Ok((child, addr))
}

/// Pull every `serve.*` counter out of a `stats` reply.
fn serve_counters(stats: &Json) -> Vec<(String, u64)> {
    let mut counters: Vec<(String, u64)> = Vec::new();
    if let Some(Json::Obj(cs)) = stats
        .get("result")
        .and_then(|r| r.get("metrics"))
        .and_then(|m| m.get("counters"))
    {
        for (name, v) in cs {
            if let (true, Json::Int(i)) = (name.starts_with("serve."), v) {
                counters.push((name.clone(), (*i).max(0) as u64));
            }
        }
    }
    counters
}

fn warm_phase(serve: &PathBuf) -> Result<(f64, Vec<(String, u64)>), String> {
    let (child, addr) = spawn_daemon(serve, "warm", &[])?;
    let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut call = |line: &str| -> Result<String, String> {
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(0) => Err("serve closed the connection".to_owned()),
            Ok(_) => Ok(reply.trim_end().to_owned()),
            Err(e) => Err(format!("read: {e}")),
        }
    };

    // First pass over the pool populates the memo cache, untimed.
    for k in 0..POOL_APPS.len() * POOL_SEEDS.len() {
        let (app, seed) = pool_point(k);
        expect_ok(&call(&sim_line(k, app, seed))?)?;
    }
    let t0 = Instant::now();
    for k in 0..WARM_REQUESTS {
        let (app, seed) = pool_point(k);
        expect_ok(&call(&sim_line(100 + k, app, seed))?)?;
    }
    let warm_s = t0.elapsed().as_secs_f64();

    let stats = expect_ok(&call(r#"{"id":999,"method":"stats"}"#)?)?;
    let counters = serve_counters(&stats);
    if counters.is_empty() {
        return Err("stats answer carried no serve.* counters".to_owned());
    }

    drop(child); // SIGKILL is fine here; graceful shutdown is ci.sh's job.
    if warm_s <= 0.0 {
        return Err("warm phase measured zero wall time".to_owned());
    }
    Ok((WARM_REQUESTS as f64 / warm_s, counters))
}

fn cold_phase(serve: &PathBuf) -> Result<f64, String> {
    let t0 = Instant::now();
    for k in 0..COLD_REQUESTS {
        let mut child = Command::new(serve)
            .args(["--oneshot", "--quick", "--jobs", "1"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .map_err(|e| format!("spawn oneshot: {e}"))?;
        {
            let mut stdin = child.stdin.take().ok_or("no stdin")?;
            // Same point every iteration: each process starts with an
            // empty cache, so each query is genuinely cold.
            let (app, seed) = pool_point(0);
            writeln!(stdin, "{}", sim_line(k, app, seed)).map_err(|e| format!("write: {e}"))?;
            // Dropping stdin closes it; oneshot exits at EOF.
        }
        let out = child
            .wait_with_output()
            .map_err(|e| format!("wait oneshot: {e}"))?;
        if !out.status.success() {
            return Err(format!("oneshot exited with {}", out.status));
        }
        let reply = String::from_utf8_lossy(&out.stdout);
        expect_ok(reply.trim())?;
    }
    let cold_s = t0.elapsed().as_secs_f64();
    if cold_s <= 0.0 {
        return Err("cold phase measured zero wall time".to_owned());
    }
    Ok(COLD_REQUESTS as f64 / cold_s)
}

/// The connections-≫-workers phase: [`LOAD_CONNS`] concurrent clients in
/// closed loops against a daemon with [`LOAD_WORKERS`] workers. With the
/// pool warmed first, every request is a memo-cache hit, so the numbers
/// measure the event loop's fan-in/fan-out (accept, framing, mailbox
/// handoff, write backlog) rather than simulation speed. Returns
/// `(rps, p50_us, p99_us)`.
fn load_phase(serve: &PathBuf) -> Result<(f64, u64, u64), String> {
    let workers = LOAD_WORKERS.to_string();
    let (child, addr) = spawn_daemon(serve, "load", &["--workers", &workers, "--queue-cap", "256"])?;

    // Warm the pool on a single connection so the timed section is
    // cache-hit dominated for every client.
    {
        let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        let mut writer = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
        let mut reader = BufReader::new(stream);
        for k in 0..POOL_APPS.len() * POOL_SEEDS.len() {
            let (app, seed) = pool_point(k);
            writer
                .write_all(sim_line(k, app, seed).as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .map_err(|e| format!("warmup write: {e}"))?;
            let mut reply = String::new();
            match reader.read_line(&mut reply) {
                Ok(0) => return Err("serve closed the warmup connection".to_owned()),
                Ok(_) => expect_ok(reply.trim_end()).map(|_| ())?,
                Err(e) => return Err(format!("warmup read: {e}")),
            }
        }
    }

    let t0 = Instant::now();
    let handles: Vec<_> = (0..LOAD_CONNS)
        .map(|conn| {
            let addr = addr.clone();
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let stream =
                    TcpStream::connect(&addr).map_err(|e| format!("conn {conn} connect: {e}"))?;
                stream.set_nodelay(true).ok();
                let mut writer =
                    stream.try_clone().map_err(|e| format!("conn {conn} clone: {e}"))?;
                let mut reader = BufReader::new(stream);
                let mut lat_us = Vec::with_capacity(LOAD_REQUESTS_PER_CONN);
                for r in 0..LOAD_REQUESTS_PER_CONN {
                    let (app, seed) = pool_point(conn + r);
                    let line = sim_line(conn * LOAD_REQUESTS_PER_CONN + r, app, seed);
                    let sent = Instant::now();
                    writer
                        .write_all(line.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .map_err(|e| format!("conn {conn} write: {e}"))?;
                    let mut reply = String::new();
                    match reader.read_line(&mut reply) {
                        Ok(0) => return Err(format!("conn {conn}: serve closed the connection")),
                        Ok(_) => expect_ok(reply.trim_end()).map(|_| ())?,
                        Err(e) => return Err(format!("conn {conn} read: {e}")),
                    }
                    lat_us.push(sent.elapsed().as_micros() as u64);
                }
                Ok(lat_us)
            })
        })
        .collect();
    let mut lat_us: Vec<u64> = Vec::with_capacity(LOAD_CONNS * LOAD_REQUESTS_PER_CONN);
    for h in handles {
        lat_us.extend(h.join().map_err(|_| "load client panicked".to_owned())??);
    }
    let load_s = t0.elapsed().as_secs_f64();
    drop(child);

    if load_s <= 0.0 || lat_us.is_empty() {
        return Err("load phase measured zero wall time".to_owned());
    }
    lat_us.sort_unstable();
    let quantile = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q).round() as usize];
    Ok((lat_us.len() as f64 / load_s, quantile(0.50), quantile(0.99)))
}

/// What the shard phase measures: throughput, latency quantiles, and
/// the router's own `serve.*` counters (including `serve.shard_*`).
struct ShardTier {
    rps: f64,
    p50_us: u64,
    p99_us: u64,
    counters: Vec<(String, u64)>,
}

/// The shard phase: the warm-phase closed loop, but against `serve
/// --shards `[`SHARD_COUNT`] — a router process fronting spawned shard
/// daemons, every request fanned to the shard owning its point's key
/// slice.
fn shard_phase(serve: &PathBuf) -> Result<ShardTier, String> {
    let shards = SHARD_COUNT.to_string();
    let (mut child, addr) = spawn_daemon(serve, "shard", &["--shards", &shards])?;
    let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut call = |line: &str| -> Result<String, String> {
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(0) => Err("router closed the connection".to_owned()),
            Ok(_) => Ok(reply.trim_end().to_owned()),
            Err(e) => Err(format!("read: {e}")),
        }
    };

    // First pass warms every shard's memo cache, untimed.
    for k in 0..POOL_APPS.len() * POOL_SEEDS.len() {
        let (app, seed) = pool_point(k);
        expect_ok(&call(&sim_line(k, app, seed))?)?;
    }
    let mut lat_us = Vec::with_capacity(SHARD_REQUESTS);
    let t0 = Instant::now();
    for k in 0..SHARD_REQUESTS {
        let (app, seed) = pool_point(k);
        let sent = Instant::now();
        expect_ok(&call(&sim_line(100 + k, app, seed))?)?;
        lat_us.push(sent.elapsed().as_micros() as u64);
    }
    let shard_s = t0.elapsed().as_secs_f64();

    let stats = expect_ok(&call(r#"{"id":999,"method":"stats"}"#)?)?;
    let counters = serve_counters(&stats);
    if !counters.iter().any(|(n, _)| n.starts_with("serve.shard_")) {
        return Err("router stats carried no serve.shard_* counters".to_owned());
    }

    // Graceful stop: SIGKILL (the guard's fallback) would orphan the
    // router's spawned shard children; SIGTERM lets it drain and reap
    // them.
    let pid = child.0.id().to_string();
    let _ = Command::new("kill").arg(&pid).status();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.0.try_wait() {
            Ok(Some(_)) => break,
            Ok(None) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            _ => break, // the guard's kill+wait cleans up on the way out
        }
    }
    drop(child);

    if shard_s <= 0.0 || lat_us.is_empty() {
        return Err("shard phase measured zero wall time".to_owned());
    }
    lat_us.sort_unstable();
    let quantile = |q: f64| lat_us[((lat_us.len() - 1) as f64 * q).round() as usize];
    Ok(ShardTier {
        rps: SHARD_REQUESTS as f64 / shard_s,
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        counters,
    })
}

/// Run all four phases against the sibling `serve` binary. Returns an
/// error (and the caller skips the block) when the binary is missing —
/// e.g. a `cargo run -p m3d-bench` without a prior workspace build.
pub fn measure_serve() -> Result<ServeProbe, String> {
    let serve = serve_binary()?;
    let (warm_rps, counters) = warm_phase(&serve)?;
    let cold_rps = cold_phase(&serve)?;
    let (load_rps, load_p50_us, load_p99_us) = load_phase(&serve)?;
    let shard = shard_phase(&serve)?;
    Ok(ServeProbe {
        warm_rps,
        cold_rps,
        load_rps,
        load_p50_us,
        load_p99_us,
        shard_rps: shard.rps,
        shard_p50_us: shard.p50_us,
        shard_p99_us: shard.p99_us,
        shard_counters: shard.counters,
        counters,
    })
}

/// The informational `serve_probe` block for `BENCH_repro.json`.
pub fn serve_probe_json(p: &ServeProbe) -> Json {
    Json::obj([
        ("warm_requests", Json::from(WARM_REQUESTS)),
        ("warm_rps", Json::from(p.warm_rps)),
        ("cold_requests", Json::from(COLD_REQUESTS)),
        ("cold_rps", Json::from(p.cold_rps)),
        ("speedup", Json::from(p.speedup())),
        (
            "load",
            Json::obj([
                ("conns", Json::from(LOAD_CONNS)),
                ("workers", Json::from(LOAD_WORKERS)),
                ("requests_per_conn", Json::from(LOAD_REQUESTS_PER_CONN)),
                ("rps", Json::from(p.load_rps)),
                ("p50_us", Json::from(p.load_p50_us)),
                ("p99_us", Json::from(p.load_p99_us)),
            ]),
        ),
        (
            "shard",
            Json::obj([
                ("shards", Json::from(SHARD_COUNT)),
                ("requests", Json::from(SHARD_REQUESTS)),
                ("rps", Json::from(p.shard_rps)),
                ("p50_us", Json::from(p.shard_p50_us)),
                ("p99_us", Json::from(p.shard_p99_us)),
                (
                    "counters",
                    Json::Obj(
                        p.shard_counters
                            .iter()
                            .map(|(n, v)| (n.clone(), Json::from(*v)))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "counters",
            Json::Obj(
                p.counters
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::from(*v)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_cycles_through_apps_and_seeds() {
        let unique: std::collections::BTreeSet<_> =
            (0..POOL_APPS.len() * POOL_SEEDS.len()).map(pool_point).collect();
        assert_eq!(unique.len(), POOL_APPS.len() * POOL_SEEDS.len());
        // The timed loop only revisits pool points (cache-hit dominated).
        for k in 0..WARM_REQUESTS {
            assert!(unique.contains(&pool_point(k)));
        }
    }

    #[test]
    fn probe_json_shape_is_stable() {
        let p = ServeProbe {
            warm_rps: 500.0,
            cold_rps: 16.0,
            load_rps: 900.0,
            load_p50_us: 1_800,
            load_p99_us: 12_000,
            shard_rps: 420.0,
            shard_p50_us: 2_100,
            shard_p99_us: 15_000,
            shard_counters: vec![("serve.shard_subrequests".to_owned(), 66)],
            counters: vec![("serve.requests".to_owned(), 66)],
        };
        assert!((p.speedup() - 31.25).abs() < 1e-9);
        let j = serve_probe_json(&p);
        let parsed = Json::parse(&j.render()).expect("valid JSON");
        assert_eq!(parsed.get("speedup"), Some(&Json::Num(31.25)));
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("serve.requests")),
            Some(&Json::Int(66))
        );
        let load = parsed.get("load").expect("load sub-block");
        assert_eq!(load.get("conns"), Some(&Json::Int(LOAD_CONNS as i64)));
        assert_eq!(load.get("workers"), Some(&Json::Int(LOAD_WORKERS as i64)));
        assert_eq!(load.get("p99_us"), Some(&Json::Int(12_000)));
        let shard = parsed.get("shard").expect("shard sub-block");
        assert_eq!(shard.get("shards"), Some(&Json::Int(SHARD_COUNT as i64)));
        assert_eq!(shard.get("p99_us"), Some(&Json::Int(15_000)));
        assert_eq!(
            shard
                .get("counters")
                .and_then(|c| c.get("serve.shard_subrequests")),
            Some(&Json::Int(66))
        );
    }

    #[test]
    fn sim_lines_follow_the_wire_grammar() {
        let line = sim_line(7, "Gcc", 1);
        let j = Json::parse(&line).expect("valid JSON");
        assert_eq!(j.get("method"), Some(&Json::Str("sim".to_owned())));
        assert_eq!(j.get("id"), Some(&Json::Int(7)));
        assert!(!line.contains('\n'), "one request = one line");
    }
}
