//! JSON artifact writing for the `repro` orchestrator.
//!
//! A run with `--out-dir DIR` leaves one `<experiment>.json` per registry
//! entry plus a `manifest.json` describing the whole run (git revision,
//! scale, seeds, jobs, per-experiment timings, and µop throughput), so
//! every trajectory point can be diffed across PRs and regenerated
//! mechanically.

use m3d_core::experiments::registry::Outcome;
use m3d_core::experiments::RunScale;
use m3d_core::report::{metrics_json, thermal_stats_json, Json};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Fixed trace-generator seed of the single-core studies.
pub const SINGLE_CORE_SEED: u64 = 0xF16;
/// Fixed trace-generator seed of the multicore study.
pub const MULTICORE_SEED: u64 = 0xF19;
/// Artifact schema version. Bumped to 2 when the per-experiment `metrics`
/// block and the manifest's aggregated `metrics` landed (see
/// EXPERIMENTS.md).
pub const SCHEMA_VERSION: u64 = 2;

/// Parameters of one `repro` invocation, recorded in the manifest.
#[derive(Debug, Clone)]
pub struct RunInfo {
    /// Whether `--quick` was passed.
    pub quick: bool,
    /// Worker-pool size used.
    pub jobs: usize,
    /// Simulation window sizes.
    pub scale: RunScale,
    /// The raw experiment selection (empty = all).
    pub wanted: Vec<String>,
}

/// The current git revision, or `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// The JSON artifact for one experiment outcome.
pub fn experiment_json(o: &Outcome) -> Json {
    let mut fields = vec![
        ("schema_version".to_owned(), Json::from(SCHEMA_VERSION)),
        ("name".to_owned(), Json::from(o.spec.name)),
        ("title".to_owned(), Json::from(o.spec.title)),
        ("ok".to_owned(), Json::from(o.report.is_ok())),
        ("start_s".to_owned(), Json::from(o.start_s)),
        ("wall_s".to_owned(), Json::from(o.wall_s)),
        (
            "metrics".to_owned(),
            o.metrics.as_ref().map_or(Json::Null, metrics_json),
        ),
    ];
    match &o.report {
        Ok(r) => {
            fields.push(("rows".to_owned(), r.rows.clone()));
            fields.push(("meta".to_owned(), r.meta.clone()));
            fields.push((
                "phases".to_owned(),
                Json::arr(r.phases.iter().map(|(name, s)| {
                    Json::obj([("phase", Json::from(*name)), ("wall_s", Json::from(*s))])
                })),
            ));
            fields.push((
                "thermal".to_owned(),
                r.thermal.as_ref().map_or(Json::Null, thermal_stats_json),
            ));
            fields.push(("uops".to_owned(), Json::from(r.uops)));
        }
        Err(err) => fields.push(("error".to_owned(), Json::from(err.to_string()))),
    }
    Json::Obj(fields)
}

/// Largest number of experiments whose `[start, start+wall)` intervals
/// overlap at any instant — the manifest's evidence that the run actually
/// parallelised (1 means fully serial).
pub fn max_overlap(outcomes: &[Outcome]) -> usize {
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(outcomes.len() * 2);
    for o in outcomes {
        events.push((o.start_s, 1));
        events.push((o.start_s + o.wall_s, -1));
    }
    // Ends sort before starts at the same instant, so touching intervals do
    // not count as overlapping.
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite times")
            .then(a.1.cmp(&b.1))
    });
    let (mut live, mut peak) = (0i64, 0i64);
    for (_, delta) in events {
        live += delta;
        peak = peak.max(live);
    }
    peak.max(0) as usize
}

/// The `manifest.json` value for a finished run.
pub fn manifest_json(info: &RunInfo, outcomes: &[Outcome], total_wall_s: f64) -> Json {
    let errors = outcomes.iter().filter(|o| o.report.is_err()).count();
    let serial_wall_s: f64 = outcomes.iter().map(|o| o.wall_s).sum();
    let uops_total: u64 = outcomes
        .iter()
        .filter_map(|o| o.report.as_ref().ok())
        .map(|r| r.uops)
        .sum();
    let uops_per_s = if total_wall_s > 0.0 {
        uops_total as f64 / total_wall_s
    } else {
        0.0
    };
    // Aggregate per-experiment metrics into one run-wide snapshot; `None`
    // when instrumentation was off for the whole run.
    let mut aggregated: Option<m3d_obs::MetricsSnapshot> = None;
    for o in outcomes {
        if let Some(m) = &o.metrics {
            aggregated.get_or_insert_with(Default::default).merge_from(m);
        }
    }
    Json::obj([
        ("schema_version", Json::from(SCHEMA_VERSION)),
        ("tool", Json::from("repro")),
        ("git_rev", Json::from(git_rev())),
        ("quick", Json::from(info.quick)),
        ("jobs", Json::from(info.jobs)),
        (
            "scale",
            Json::obj([
                ("warmup", Json::from(info.scale.warmup)),
                ("measure", Json::from(info.scale.measure)),
            ]),
        ),
        (
            "seeds",
            Json::obj([
                ("single_core", Json::from(SINGLE_CORE_SEED)),
                ("multicore", Json::from(MULTICORE_SEED)),
            ]),
        ),
        (
            "wanted",
            Json::arr(info.wanted.iter().map(|w| Json::from(w.clone()))),
        ),
        ("errors", Json::from(errors)),
        ("total_wall_s", Json::from(total_wall_s)),
        ("serial_wall_s", Json::from(serial_wall_s)),
        ("max_overlap", Json::from(max_overlap(outcomes))),
        ("uops_total", Json::from(uops_total)),
        ("uops_per_s", Json::from(uops_per_s)),
        (
            "metrics",
            aggregated.as_ref().map_or(Json::Null, metrics_json),
        ),
        (
            "experiments",
            Json::arr(outcomes.iter().map(|o| {
                Json::obj([
                    ("name", Json::from(o.spec.name)),
                    ("artifact", Json::from(format!("{}.json", o.spec.name))),
                    ("ok", Json::from(o.report.is_ok())),
                    ("start_s", Json::from(o.start_s)),
                    ("wall_s", Json::from(o.wall_s)),
                    (
                        "uops",
                        Json::from(o.report.as_ref().map(|r| r.uops).unwrap_or(0)),
                    ),
                ])
            })),
        ),
    ])
}

/// Write per-experiment artifacts and the manifest under `dir` (created if
/// missing). Returns the manifest path.
pub fn write_artifacts(
    dir: &Path,
    info: &RunInfo,
    outcomes: &[Outcome],
    total_wall_s: f64,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    for o in outcomes {
        let path = dir.join(format!("{}.json", o.spec.name));
        let body = experiment_json(o).render();
        m3d_obs::add("artifacts.bytes_written", body.len() as u64);
        std::fs::write(&path, body)?;
    }
    let manifest = dir.join("manifest.json");
    let body = manifest_json(info, outcomes, total_wall_s).render();
    m3d_obs::add("artifacts.bytes_written", body.len() as u64);
    m3d_obs::add("artifacts.files_written", outcomes.len() as u64 + 1);
    std::fs::write(&manifest, body)?;
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3d_core::experiments::registry::{find, ExperimentError, ExperimentReport, Outcome};

    fn outcome(name: &str, start_s: f64, wall_s: f64, ok: bool) -> Outcome {
        Outcome {
            spec: find(name).expect("registry entry"),
            report: if ok {
                Ok(ExperimentReport {
                    uops: 100,
                    ..Default::default()
                })
            } else {
                Err(ExperimentError::Panic("boom".to_owned()))
            },
            start_s,
            wall_s,
            metrics: None,
        }
    }

    #[test]
    fn overlap_counts_concurrent_intervals() {
        let o = [
            outcome("table1", 0.0, 1.0, true),
            outcome("table2", 0.5, 1.0, true),
            outcome("fig2", 2.0, 1.0, true),
        ];
        assert_eq!(max_overlap(&o), 2);
        // Touching intervals are not overlapping.
        let o = [
            outcome("table1", 0.0, 1.0, true),
            outcome("table2", 1.0, 1.0, true),
        ];
        assert_eq!(max_overlap(&o), 1);
    }

    #[test]
    fn manifest_counts_errors_and_uops() {
        let info = RunInfo {
            quick: true,
            jobs: 2,
            scale: m3d_core::experiments::RunScale::quick(),
            wanted: vec!["all".to_owned()],
        };
        let o = [
            outcome("table1", 0.0, 1.0, true),
            outcome("table2", 0.0, 1.0, false),
        ];
        let m = manifest_json(&info, &o, 1.5);
        assert_eq!(m.get("errors"), Some(&Json::Int(1)));
        assert_eq!(m.get("uops_total"), Some(&Json::Int(100)));
        assert_eq!(m.get("jobs"), Some(&Json::Int(2)));
        let exps = match m.get("experiments") {
            Some(Json::Arr(v)) => v,
            other => panic!("experiments missing: {other:?}"),
        };
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0].get("artifact"), Some(&Json::from("table1.json")));
    }

    #[test]
    fn metrics_blocks_round_trip_through_artifacts() {
        let snap = m3d_obs::MetricsSnapshot {
            counters: vec![
                ("thermal.iterations".to_owned(), 321),
                ("thermal.warm_start.hits".to_owned(), 4),
            ],
            histograms: vec![m3d_obs::HistogramSnapshot {
                name: "thermal.residual_k".to_owned(),
                count: 2,
                sum: 3.0e-5,
                min: 1.0e-5,
                max: 2.0e-5,
                buckets: vec![(-17, 2)],
                exact: vec![],
            }],
        };
        let mut o = outcome("table1", 0.0, 0.5, true);
        o.metrics = Some(snap.clone());
        let j = experiment_json(&o);
        assert_eq!(j.get("schema_version"), Some(&Json::Int(2)));
        let parsed = Json::parse(&j.render()).expect("artifact parses");
        let back = m3d_core::report::metrics_from_json(
            parsed.get("metrics").expect("metrics block"),
        )
        .expect("decodes");
        assert_eq!(back, snap);

        // The manifest aggregates two outcomes' snapshots.
        let mut o2 = outcome("table2", 0.0, 0.5, true);
        o2.metrics = Some(snap.clone());
        let info = RunInfo {
            quick: true,
            jobs: 1,
            scale: m3d_core::experiments::RunScale::quick(),
            wanted: Vec::new(),
        };
        let m = manifest_json(&info, &[o, o2], 1.0);
        let agg = m3d_core::report::metrics_from_json(m.get("metrics").expect("agg"))
            .expect("decodes");
        assert_eq!(agg.counter("thermal.iterations"), Some(642));
        assert_eq!(agg.histogram("thermal.residual_k").map(|h| h.count), Some(4));
    }

    #[test]
    fn artifacts_without_metrics_write_null_blocks() {
        let o = outcome("table1", 0.0, 0.5, true);
        let j = experiment_json(&o);
        assert_eq!(j.get("metrics"), Some(&Json::Null));
        let info = RunInfo {
            quick: true,
            jobs: 1,
            scale: m3d_core::experiments::RunScale::quick(),
            wanted: Vec::new(),
        };
        let m = manifest_json(&info, std::slice::from_ref(&o), 1.0);
        assert_eq!(m.get("metrics"), Some(&Json::Null));
    }

    #[test]
    fn artifacts_land_on_disk() {
        let dir = std::env::temp_dir().join(format!("m3d-artifacts-{}", std::process::id()));
        let info = RunInfo {
            quick: true,
            jobs: 1,
            scale: m3d_core::experiments::RunScale::quick(),
            wanted: Vec::new(),
        };
        let o = [outcome("table1", 0.0, 0.1, true)];
        let manifest = write_artifacts(&dir, &info, &o, 0.1).expect("writable temp dir");
        let text = std::fs::read_to_string(&manifest).expect("manifest written");
        assert!(text.contains("\"errors\": 0"));
        assert!(dir.join("table1.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
