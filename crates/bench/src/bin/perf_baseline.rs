//! `perf_baseline` — measure or gate the repository's performance baseline.
//!
//! # Usage
//!
//! ```text
//! perf_baseline --write FILE   # measure and (over)write the baseline
//! perf_baseline --check FILE   # measure and fail on counter drift
//! ```
//!
//! The measurement runs the schedule-independent experiment subset at
//! `--quick` scale with one worker and records, per experiment, the wall
//! time plus the deterministic integer counters (solver sweeps, warm-start
//! hits/misses, SRAM candidates evaluated/pruned, µops simulated). It also
//! probes the instrumentation overhead of a serial thermal solve with
//! collection off vs on.
//!
//! `--check` compares only the integer counters against the committed
//! file — a drift means the algorithms changed behaviour, not just speed —
//! and exits `1` listing every drifted counter. Wall times and the
//! overhead probe are informational and never gated, with one exception:
//! the cycle probe (simulated cycles per wall-second over a pinned point
//! set) gates its deterministic cycle count exactly and its throughput
//! against a generous budget, so losing the cycle-loop speedup wholesale
//! fails CI while machine noise cannot.

use m3d_bench::baseline::{baseline_from_json, baseline_json, drift, measure};
use m3d_bench::serve_probe::{measure_serve, serve_probe_json};
use m3d_core::report::Json;
use std::path::Path;

fn usage() -> ! {
    eprintln!("usage: perf_baseline --write FILE | --check FILE");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (mode, path) = match argv.as_slice() {
        [m, p] if m == "--write" || m == "--check" => (m.as_str(), Path::new(p)),
        _ => usage(),
    };

    eprintln!("[perf_baseline] measuring (quick scale, 1 worker)...");
    let current = measure();
    for e in &current.experiments {
        eprintln!("[perf_baseline]   {:<8} {:.3}s", e.name, e.wall_s);
    }
    eprintln!(
        "[perf_baseline] obs overhead on a serial thermal solve: \
         {:.3} ms off, {:.3} ms on ({:+.2}%)",
        current.solve_disabled_s * 1e3,
        current.solve_enabled_s * 1e3,
        current.overhead_pct()
    );
    eprintln!(
        "[perf_baseline] batch sharding: {:.3}s on 1 lane, {:.3}s on {} \
         ({:.2}x)",
        current.batch_serial_s,
        current.batch_sharded_s,
        current.batch_lanes,
        current.batch_speedup()
    );
    eprintln!(
        "[perf_baseline] cycle probe: {} cycles in {:.3}s ({:.0} cycles/s)",
        current.cycle_cycles,
        current.cycle_wall_s,
        current.cycles_per_sec()
    );
    eprintln!(
        "[perf_baseline] search probe: {} candidates, {} pruned before \
         simulation, {} simulated, frontier {} in {:.3}s",
        current.search_candidates,
        current.search_pruned,
        current.search_simulated,
        current.search_frontier,
        current.search_wall_s
    );

    // The serve probe is informational (wall-clock, machine-dependent) and
    // never gated; a missing serve binary skips it rather than failing.
    let serve = match measure_serve() {
        Ok(p) => {
            eprintln!(
                "[perf_baseline] serve probe: {:.1} rps warm daemon vs \
                 {:.1} rps cold oneshot ({:.1}x); load {:.1} rps \
                 p99 {} us; {} shards {:.1} rps p99 {} us",
                p.warm_rps,
                p.cold_rps,
                p.speedup(),
                p.load_rps,
                p.load_p99_us,
                m3d_bench::serve_probe::SHARD_COUNT,
                p.shard_rps,
                p.shard_p99_us
            );
            Some(p)
        }
        Err(e) => {
            eprintln!("[perf_baseline] serve probe skipped: {e}");
            None
        }
    };

    match mode {
        "--write" => {
            let mut doc = baseline_json(&current);
            if let (Json::Obj(fields), Some(p)) = (&mut doc, &serve) {
                fields.push(("serve_probe".to_owned(), serve_probe_json(p)));
            }
            let body = doc.render() + "\n";
            if let Err(e) = std::fs::write(path, body) {
                eprintln!("[perf_baseline] cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("[perf_baseline] wrote {}", path.display());
        }
        "--check" => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("[perf_baseline] cannot read {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            let committed = Json::parse(&text)
                .map_err(|e| e.to_string())
                .and_then(|j| baseline_from_json(&j))
                .unwrap_or_else(|e| {
                    eprintln!("[perf_baseline] {} is not a baseline: {e}", path.display());
                    std::process::exit(1);
                });
            let drifts = drift(&committed, &current);
            if drifts.is_empty() {
                eprintln!(
                    "[perf_baseline] OK: no counter drift against {}",
                    path.display()
                );
            } else {
                eprintln!("[perf_baseline] FAIL: counter drift detected:");
                for d in &drifts {
                    eprintln!("[perf_baseline]   {d}");
                }
                eprintln!(
                    "[perf_baseline] if the change is intentional, refresh the \
                     baseline with `perf_baseline --write {}`",
                    path.display()
                );
                std::process::exit(1);
            }
        }
        _ => unreachable!(),
    }
}
