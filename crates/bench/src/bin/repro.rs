//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [experiment ...]
//! experiments: table1 table2 fig2 table3 table4 table5 table6 table7
//!              table8 table11 fig5 fig6 fig7 fig8 fig9 fig10
//!              ablations section5 all
//! ```
//!
//! With no arguments, runs everything at full scale (several minutes).

use m3d_core::experiments::{
    ablations, fig5_logic, fig6_fig7_single_core, fig8_thermal, fig9_fig10_multicore,
    section5_alternatives, table11_configs, table1_table2_fig2_vias as vias,
    table3_4_5_partitioning as t345, table6_best, table7_techniques, table8_hetero, RunScale,
};
use m3d_core::planner::DesignSpace;
use m3d_core::report::thermal_stats_text;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| *a != "--quick")
        .map(String::as_str)
        .collect();
    let want = |name: &str| wanted.is_empty() || wanted.iter().any(|w| *w == name || *w == "all");

    // Cheap analytical experiments first.
    if want("table1") {
        println!("{}", vias::table1_text());
    }
    if want("table2") {
        println!("{}", vias::table2_text());
    }
    if want("fig2") {
        println!("{}", vias::fig2_text());
    }
    if want("table3") {
        println!("{}", t345::table3_text());
    }
    if want("table4") {
        println!("{}", t345::table4_text());
    }
    if want("table5") {
        println!("{}", t345::table5_text());
    }
    if want("fig5") {
        println!("{}", fig5_logic::fig5_text());
    }
    if want("table7") {
        println!("{}", table7_techniques::table7_text());
    }
    if want("ablations") {
        println!("{}", ablations::ablations_text());
    }
    if want("section5") {
        println!("{}", section5_alternatives::enlarged_text());
        println!("{}", section5_alternatives::lp_top_text());
        println!("{}", section5_alternatives::headroom_text());
    }

    let needs_space = ["table6", "table8", "table11", "fig6", "fig7", "fig8", "fig9", "fig10"]
        .iter()
        .any(|e| want(e));
    if !needs_space {
        return;
    }
    eprintln!("[repro] computing design space (planner over 12 structures)...");
    let space = DesignSpace::compute();
    if want("table6") {
        println!("{}", table6_best::table6_text(&space));
    }
    if want("table8") {
        println!("{}", table8_hetero::table8_text(&space));
    }
    if want("table11") {
        println!("{}", table11_configs::table11_text(&space));
        let (feas, stats) = space.thermal_feasibility();
        println!("Thermal feasibility at nominal power (Tjmax {} C):", m3d_core::planner::TJMAX_C);
        for f in &feas {
            println!(
                "  {:<14} {:>6.1} C  {}",
                f.design.label(),
                f.peak_c,
                if f.feasible { "ok" } else { "EXCEEDS Tjmax" }
            );
        }
        println!("{}\n", thermal_stats_text("feasibility", &stats));
    }
    if want("fig6") || want("fig7") {
        eprintln!("[repro] running single-core study (21 apps x 6 designs)...");
        let study = fig6_fig7_single_core::run(&space, scale);
        if want("fig6") {
            println!("{}", fig6_fig7_single_core::fig6_text(&study));
        }
        if want("fig7") {
            println!("{}", fig6_fig7_single_core::fig7_text(&study));
        }
    }
    if want("fig8") {
        eprintln!("[repro] running thermal study...");
        let apps = if quick { 6 } else { 21 };
        let t0 = std::time::Instant::now();
        let (rows, stats) = fig8_thermal::run_with_stats(&space, scale, apps);
        let wall = t0.elapsed().as_secs_f64();
        println!("{}", fig8_thermal::fig8_text(&rows));
        println!("{}", thermal_stats_text("fig8", &stats));
        println!("[fig8] experiment wall time: {wall:.2} s\n");
    }
    if want("fig9") || want("fig10") {
        eprintln!("[repro] running multicore study (15 apps x 5 designs)...");
        let t0 = std::time::Instant::now();
        let (study, stats) = fig9_fig10_multicore::run_with_stats(&space, scale);
        let wall = t0.elapsed().as_secs_f64();
        if want("fig9") {
            println!("{}", fig9_fig10_multicore::fig9_text(&study));
        }
        if want("fig10") {
            println!("{}", fig9_fig10_multicore::fig10_text(&study));
        }
        println!("{}", fig9_fig10_multicore::thermal_text(&study));
        println!("{}", thermal_stats_text("fig9/fig10", &stats));
        println!("[fig9/fig10] experiment wall time: {wall:.2} s\n");
    }
}
