//! `repro` — regenerate every table and figure of the paper, in parallel.
//!
//! # Usage
//!
//! ```text
//! repro [--quick] [--jobs N] [--out-dir DIR] [--list] [experiment ...]
//! ```
//!
//! With no experiment names, everything runs at full scale (the slowest
//! experiment bounds the wall time; independent experiments run
//! concurrently). Experiment names follow the paper's tables and figures:
//!
//! ```text
//! table1 table2 fig2 table3 table4 table5 fig5 table7 ablations section5
//! table6 table8 table11 fig6 fig7 fig8 fig9 fig10 all
//! ```
//!
//! Figures that share one simulation run are grouped: asking for `fig6`
//! also runs the Figure 7 simulation (and vice versa) but prints only the
//! requested table; the same holds for `fig9`/`fig10`.
//!
//! # Flags
//!
//! * `--quick` — small simulation windows (50k warm-up / 60k measured µops
//!   instead of 250k/150k) and a 6-app subset for the Figure 8 thermal
//!   study; seconds instead of minutes.
//! * `--jobs N` (or `--jobs=N`) — worker-pool size, 1 to 64. Defaults to
//!   the machine's available parallelism. Jobs both run independent
//!   experiments concurrently and shard each experiment's cycle-level
//!   simulations across the `m3d-uarch` batch engine. `--jobs 1`
//!   reproduces the historical serial output byte-for-byte; any N produces
//!   identical rendered tables (only wall-clock numbers vary).
//! * `--out-dir DIR` (or `--out-dir=DIR`) — write JSON artifacts under
//!   `DIR` (created if missing). Enables instrumentation so artifacts carry
//!   `metrics` blocks.
//! * `--metrics` — enable instrumentation and print a metric table (solver
//!   iterations, warm-start hits, search candidates pruned, ...) to stderr
//!   at the end of the run.
//! * `--trace-out FILE` (or `--trace-out=FILE`) — enable instrumentation
//!   and write a Chrome `trace_event` JSON file with per-experiment and
//!   per-solver spans on the worker lanes; open it in Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! * `--list` — print every registry entry (`name`, declared dependencies,
//!   scheduling weight) one per line and exit; shares the registry
//!   iterator with `m3d-serve`, so the two can never disagree about what
//!   exists.
//!
//! Instrumentation never touches stdout: rendered tables stay
//! byte-identical with and without `--metrics`/`--trace-out`.
//!
//! # Artifact layout
//!
//! With `--out-dir DIR`, each selected registry entry leaves
//! `DIR/<name>.json` (structured rows, metadata, per-phase wall times,
//! thermal-solver statistics, µop count) — shared entries use their
//! registry id, e.g. `fig6_fig7.json` — plus `DIR/manifest.json` with the
//! git revision, scale, seeds, jobs, per-experiment timings, the peak
//! number of overlapping experiments, and aggregate µop throughput.
//!
//! Rendered text always goes to stdout in deterministic registry order
//! regardless of completion order; progress notes go to stderr.
//!
//! # Exit status
//!
//! `0` on success, `1` if any experiment failed (the others still run and
//! their artifacts are still written), `2` on a usage error.

use m3d_bench::artifacts::{write_artifacts, RunInfo};
use m3d_core::experiments::registry::{entries, run_experiments, select, Ctx, MAX_JOBS};
use m3d_core::experiments::RunScale;
use std::path::PathBuf;
use std::time::Instant;

/// Parsed command line.
struct Args {
    quick: bool,
    jobs: usize,
    out_dir: Option<PathBuf>,
    metrics: bool,
    trace_out: Option<PathBuf>,
    list: bool,
    wanted: Vec<String>,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        jobs: default_jobs(),
        out_dir: None,
        metrics: false,
        trace_out: None,
        list: false,
        wanted: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut flag_value = |name: &str| -> Result<Option<String>, String> {
            if let Some(v) = a.strip_prefix(&format!("{name}=")) {
                return Ok(Some(v.to_owned()));
            }
            if a == name {
                return match it.next() {
                    Some(v) => Ok(Some(v.clone())),
                    None => Err(format!("{name} requires a value")),
                };
            }
            Ok(None)
        };
        if a == "--quick" {
            args.quick = true;
        } else if a == "--metrics" {
            args.metrics = true;
        } else if a == "--list" {
            args.list = true;
        } else if let Some(v) = flag_value("--jobs")? {
            // Range validation happens in `CtxBuilder::build`; the CLI only
            // rejects values that are not integers at all.
            args.jobs = v.parse::<usize>().map_err(|_| {
                format!("--jobs needs an integer between 1 and {MAX_JOBS}, got `{v}`")
            })?;
        } else if let Some(v) = flag_value("--out-dir")? {
            args.out_dir = Some(PathBuf::from(v));
        } else if let Some(v) = flag_value("--trace-out")? {
            args.trace_out = Some(PathBuf::from(v));
        } else if a.starts_with('-') {
            return Err(format!("unknown flag `{a}` (see --help in the rustdoc)"));
        } else {
            args.wanted.push(a.clone());
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: repro [--quick] [--jobs N] [--out-dir DIR] [--metrics] \
         [--trace-out FILE] [--list] [experiment ...]"
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("[repro] {e}");
            usage();
            std::process::exit(2);
        }
    };
    if args.list {
        for (name, deps, weight) in entries() {
            let deps = if deps.is_empty() {
                "-".to_owned()
            } else {
                deps.join(",")
            };
            println!("{name}\tdeps={deps}\tweight={weight}");
        }
        return;
    }
    let wanted: Vec<&str> = args.wanted.iter().map(String::as_str).collect();
    let selected = match select(&wanted) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[repro] {e}");
            std::process::exit(2);
        }
    };
    let want =
        |name: &str| wanted.is_empty() || wanted.iter().any(|w| *w == name || *w == "all");

    // Any observability consumer turns collection on; without one, every
    // instrumentation site is a single relaxed atomic load.
    let instrument = args.metrics || args.trace_out.is_some() || args.out_dir.is_some();
    if instrument {
        m3d_obs::enable();
        m3d_obs::label_thread("repro-main");
    }

    let scale = if args.quick {
        RunScale::quick()
    } else {
        RunScale::full()
    };
    let ctx = match Ctx::builder()
        .scale(scale)
        .quick(args.quick)
        .jobs(args.jobs)
        .build()
    {
        Ok(ctx) => ctx,
        Err(e) => {
            eprintln!("[repro] {e}");
            usage();
            std::process::exit(2);
        }
    };
    let t0 = Instant::now();
    let outcomes = run_experiments(&ctx, &selected, args.jobs, |o| match &o.report {
        Ok(r) => {
            for s in &r.sections {
                if s.only_for.is_none_or(want) {
                    println!("{}", s.text);
                }
            }
        }
        Err(e) => eprintln!("[repro] {} FAILED: {e}", o.spec.name),
    });
    let total_wall_s = t0.elapsed().as_secs_f64();

    if let Some(dir) = &args.out_dir {
        let info = RunInfo {
            quick: args.quick,
            jobs: args.jobs,
            scale,
            wanted: args.wanted.clone(),
        };
        match write_artifacts(dir, &info, &outcomes, total_wall_s) {
            Ok(manifest) => eprintln!(
                "[repro] wrote {} artifact(s) and {}",
                outcomes.len(),
                manifest.display()
            ),
            Err(e) => {
                eprintln!("[repro] failed writing artifacts to {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }

    if args.metrics {
        eprintln!("[repro] metrics over the whole run:");
        eprint!("{}", m3d_core::report::metrics_text(&m3d_obs::snapshot()));
    }
    if let Some(path) = &args.trace_out {
        match m3d_obs::write_chrome_trace(path) {
            Ok(n) => eprintln!(
                "[repro] wrote {n} trace event(s) to {} (open in https://ui.perfetto.dev)",
                path.display()
            ),
            Err(e) => {
                eprintln!("[repro] failed writing trace to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if outcomes.iter().any(|o| o.report.is_err()) {
        std::process::exit(1);
    }
}
