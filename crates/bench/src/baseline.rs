//! The `perf_baseline` measurement: deterministic counters per experiment,
//! plus an instrumentation-overhead probe, serialized to `BENCH_repro.json`.
//!
//! # What is gated, and why
//!
//! The drift gate compares **integer counters** (solver sweeps, warm-start
//! hits, search candidates evaluated/pruned, µops simulated) — quantities
//! the determinism contract pins exactly: the red–black solver performs
//! bit-identical arithmetic at any thread count, and the measured subset
//! below avoids the one schedule-*dependent* experiment family (the fig8
//! warm-start chains fan out over `available_parallelism`, so their
//! iteration counts legitimately differ across machines). Wall times are
//! recorded for trend-watching but never gated — they depend on the
//! machine running CI. The overhead probe is the one *relative* wall-time
//! quantity that is gated: enabled-vs-disabled solves run interleaved on
//! the same machine in the same process, so their ratio cancels the
//! machine out, and it must stay under [`OBS_OVERHEAD_BUDGET_PCT`] — the
//! promise that observability (now including the windowed telemetry
//! record sites) stays effectively free.
//!
//! The measurement always runs at `--quick` scale with one worker, so the
//! design-space `OnceLock` is computed by the same experiment every time
//! and counter attribution is reproducible. The `uarch.batch.*` counters
//! (points, cache hits, checkpoint reuses, cycles) are gated the same way:
//! the batch engine's results and counters are pure functions of the point
//! list, independent of the lane count. A separate probe times the same
//! batch on one lane vs many, recording the sharding gain (informational,
//! never gated).
//!
//! The **cycle probe** measures the raw cycle-loop throughput: simulated
//! machine cycles per wall-second over a pinned single-lane point set with
//! the memo cache bypassed. Its `cycles` count is deterministic and gated
//! exactly like the experiment counters; its throughput is gated against a
//! *generous* budget ([`CYCLE_THROUGHPUT_BUDGET`]) so a wholesale loss of
//! the SoA/skip-ahead speedup fails CI while ordinary machine noise never
//! does.
//!
//! The **search probe** runs the pinned [`search_probe_space`] through
//! `m3d_core::search` and gates its candidate/pruned/simulated/frontier
//! counts exactly: the space is built so the equal-frequency rule must
//! prune ≥30% of it before simulation, so a silently disabled pruning rule
//! (or a frontier change) fails CI. Its wall time is informational.

use crate::artifacts::SCHEMA_VERSION;
use m3d_core::experiments::registry::{run_experiments, select, Ctx, Outcome};
use m3d_core::experiments::RunScale;
use m3d_core::planner::DesignSpace;
use m3d_core::report::Json;
use m3d_core::search::{run_search, SearchOptions, SearchOutcome, SearchSpace, SearchSpaceBuilder};
use m3d_thermal::floorplan::Floorplan;
use m3d_thermal::model::{SweepMode, ThermalModel};
use m3d_thermal::solver::ThermalConfig;
use m3d_tech::layers::LayerStack;
use m3d_uarch::{CoreConfig, SimBatch, SimInterval, SimPoint};
use m3d_workloads::spec::spec2006;
use std::time::Instant;

/// The schedule-independent experiments the baseline measures. fig8 is
/// deliberately absent — its warm-start chains are chunked over
/// `available_parallelism`, so its thermal iteration counts legitimately
/// vary across machines — and fig9/fig10 share fig8's thermal coupling.
/// fig6/fig7 is the cycle-level representative: its µop count depends only
/// on the scale and seeds.
pub const GATED_EXPERIMENTS: &[&str] = &[
    "table3", "table4", "table5", "fig5", "table6", "table8", "table11", "fig6_fig7",
];

/// The counters the drift gate compares exactly. All integers; all
/// independent of machine, thread count, and wall time for the experiments
/// in [`GATED_EXPERIMENTS`].
pub const GATE_COUNTERS: &[&str] = &[
    "core.uops",
    "sram.hetero.candidates",
    "sram.organizations.evaluated",
    "sram.organizations.pruned",
    "sram.partition.strategies_evaluated",
    "sram.partition.strategies_skipped",
    "thermal.iterations",
    "thermal.model_cache.hits",
    "thermal.model_cache.misses",
    "thermal.non_converged",
    "thermal.solves",
    "thermal.warm_start.hits",
    "thermal.warm_start.misses",
    "uarch.batch.cache_hits",
    "uarch.batch.cap_exhausted",
    "uarch.batch.checkpoint_reuses",
    "uarch.batch.cycles",
    "uarch.batch.points",
];

/// One experiment's measured state.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentBaseline {
    /// Registry id.
    pub name: String,
    /// Wall time, seconds (informational; never gated).
    pub wall_s: f64,
    /// `(gate counter, value)` pairs, in [`GATE_COUNTERS`] order, zeros
    /// included so a counter that *stops* being emitted is also a drift.
    pub counters: Vec<(String, u64)>,
}

/// A full `BENCH_repro.json` measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Per-experiment results, in [`GATED_EXPERIMENTS`] order.
    pub experiments: Vec<ExperimentBaseline>,
    /// Fastest thermal solve wall time with collection off, seconds.
    pub solve_disabled_s: f64,
    /// Fastest thermal solve wall time with collection on, seconds.
    pub solve_enabled_s: f64,
    /// Fastest batch-probe wall time on one lane, seconds.
    pub batch_serial_s: f64,
    /// Fastest batch-probe wall time on [`Baseline::batch_lanes`] lanes,
    /// seconds.
    pub batch_sharded_s: f64,
    /// Lane count used by the sharded side of the batch probe.
    pub batch_lanes: u64,
    /// Machine cycles simulated by the cycle probe's pinned point set
    /// (deterministic; gated exactly).
    pub cycle_cycles: u64,
    /// Fastest wall time of one cycle-probe pass, seconds.
    pub cycle_wall_s: f64,
    /// Candidates enumerated by the search probe (gated exactly).
    pub search_candidates: u64,
    /// Search-probe candidates pruned before simulation (gated exactly —
    /// a drop means a pruning rule stopped firing).
    pub search_pruned: u64,
    /// Search-probe candidates actually simulated (gated exactly).
    pub search_simulated: u64,
    /// Search-probe Pareto-frontier size (gated exactly).
    pub search_frontier: u64,
    /// Search-probe wall time, seconds (informational; never gated).
    pub search_wall_s: f64,
}

impl Baseline {
    /// Enabled-vs-disabled overhead of the instrumented thermal solve, in
    /// percent (negative values mean noise dominated the probe).
    pub fn overhead_pct(&self) -> f64 {
        if self.solve_disabled_s > 0.0 {
            (self.solve_enabled_s / self.solve_disabled_s - 1.0) * 100.0
        } else {
            0.0
        }
    }

    /// Serial-over-sharded wall-time ratio of the batch probe (>1 means
    /// sharding helped; ≈1 on single-CPU machines).
    pub fn batch_speedup(&self) -> f64 {
        if self.batch_sharded_s > 0.0 {
            self.batch_serial_s / self.batch_sharded_s
        } else {
            0.0
        }
    }

    /// Simulated machine cycles per wall-second of the cycle probe — the
    /// headline number for cycle-loop throughput work.
    pub fn cycles_per_sec(&self) -> f64 {
        if self.cycle_wall_s > 0.0 {
            self.cycle_cycles as f64 / self.cycle_wall_s
        } else {
            0.0
        }
    }
}

fn gate_counters_of(outcome: &Outcome) -> Vec<(String, u64)> {
    let snap = outcome.metrics.as_ref();
    GATE_COUNTERS
        .iter()
        .map(|name| {
            let v = snap.and_then(|m| m.counter(name)).unwrap_or(0);
            ((*name).to_owned(), v)
        })
        .collect()
}

/// One timed batch of `SOLVE_BATCH` solves of the probe model, seconds.
const SOLVE_BATCH: usize = 4;

fn solve_batch_s(model: &ThermalModel, powers: &[Vec<f64>]) -> f64 {
    let t0 = Instant::now();
    for _ in 0..SOLVE_BATCH {
        let (_, stats) = model
            .solve_with(powers, None, SweepMode::Serial)
            .expect("probe model solves");
        assert!(stats.converged, "overhead probe must converge");
    }
    t0.elapsed().as_secs_f64() / SOLVE_BATCH as f64
}

fn fastest(times: &[f64]) -> f64 {
    times.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Probe the cost of instrumentation on a serial thermal solve: the
/// fastest solve with collection off and on (min-of-N is the
/// noise-robust estimator — every slowdown source is additive). The
/// off/on samples are interleaved so slow drift in machine state
/// (frequency scaling, cache warmth, neighbours) cannot land entirely on
/// one side. Restores the previous enablement state.
pub fn measure_overhead(samples: usize) -> (f64, f64) {
    let was_enabled = m3d_obs::is_enabled();
    let cfg = ThermalConfig {
        nx: 16,
        ny: 16,
        ..ThermalConfig::default()
    };
    let fp = Floorplan::ryzen_like(9.0e-6);
    let powers = vec![fp.uniform_power(6.4)];
    let model = ThermalModel::new(&LayerStack::planar_2d(), &[fp], &cfg)
        .expect("probe model builds");
    // Warm up both paths once before timing anything.
    m3d_obs::disable();
    solve_batch_s(&model, &powers);
    m3d_obs::enable();
    solve_batch_s(&model, &powers);
    let (mut off, mut on) = (Vec::with_capacity(samples), Vec::with_capacity(samples));
    for _ in 0..samples {
        m3d_obs::disable();
        off.push(solve_batch_s(&model, &powers));
        m3d_obs::enable();
        on.push(solve_batch_s(&model, &powers));
    }
    if !was_enabled {
        m3d_obs::disable();
    }
    (fastest(&off), fastest(&on))
}

/// Points in the batch-sharding probe.
const BATCH_PROBE_POINTS: usize = 8;

/// Trace seed for the probe, distinct from every experiment seed so the
/// probe cannot interact with the batch memo cache of a gated run (the
/// probe also bypasses the cache entirely).
const BATCH_PROBE_SEED: u64 = 0xBE9C;

/// Probe the batch engine's sharding gain: the same single-core point set
/// through [`SimBatch`] on one lane and on [`Baseline::batch_lanes`]
/// lanes, memo cache bypassed so both sides simulate every point.
/// Min-of-N with interleaved sides, like [`measure_overhead`]. The times
/// are informational (machine-dependent) and never gated.
pub fn measure_batch(samples: usize) -> (f64, f64, usize) {
    let lanes = std::thread::available_parallelism()
        .map(|n| n.get().min(BATCH_PROBE_POINTS))
        .unwrap_or(1);
    let interval = SimInterval {
        warmup: 10_000,
        measure: 10_000,
    };
    let points: Vec<SimPoint> = spec2006()
        .into_iter()
        .take(BATCH_PROBE_POINTS)
        .map(|app| SimPoint::single(CoreConfig::base_2d(), app, BATCH_PROBE_SEED, interval))
        .collect();
    let run = |jobs: usize| {
        let t0 = Instant::now();
        for r in SimBatch::new(jobs).without_cache().run(&points) {
            r.expect("probe points are valid");
        }
        t0.elapsed().as_secs_f64()
    };
    // Warm both paths once before timing.
    run(1);
    run(lanes);
    let (mut serial, mut sharded) = (Vec::with_capacity(samples), Vec::with_capacity(samples));
    for _ in 0..samples {
        serial.push(run(1));
        sharded.push(run(lanes));
    }
    (fastest(&serial), fastest(&sharded), lanes)
}

/// Apps in the cycle-throughput probe's pinned point set. Each runs once
/// on the 2D baseline core and once on the 3D-paths core so both wakeup
/// latencies exercise the loop.
const CYCLE_PROBE_APPS: usize = 4;

/// Warm-up cycles per cycle-probe point (excluded from measurement state
/// but simulated, so they count toward the probe's cycle total).
const CYCLE_PROBE_WARMUP: u64 = 10_000;

/// Measured cycles per cycle-probe point.
const CYCLE_PROBE_MEASURE: u64 = 30_000;

/// Trace seed for the cycle probe, distinct from every experiment seed
/// and from [`BATCH_PROBE_SEED`] so the probe cannot interact with any
/// memo cache (it also bypasses the cache entirely).
const CYCLE_PROBE_SEED: u64 = 0xC9C1;

/// The cycle probe's pinned point set: the first [`CYCLE_PROBE_APPS`]
/// SPEC2006 profiles, each as a single-core point on the 2D baseline and
/// on the 3D-paths configuration.
fn cycle_probe_points() -> Vec<SimPoint> {
    let interval = SimInterval {
        warmup: CYCLE_PROBE_WARMUP,
        measure: CYCLE_PROBE_MEASURE,
    };
    spec2006()
        .into_iter()
        .take(CYCLE_PROBE_APPS)
        .flat_map(|app| {
            [
                SimPoint::single(CoreConfig::base_2d(), app.clone(), CYCLE_PROBE_SEED, interval),
                SimPoint::single(
                    CoreConfig::base_2d().with_3d_paths(),
                    app,
                    CYCLE_PROBE_SEED,
                    interval,
                ),
            ]
        })
        .collect()
}

/// Probe raw cycle-loop throughput: one lane, memo cache bypassed, the
/// pinned cycle-probe point set. Returns `(cycles, wall_s)`
/// where `cycles` is the deterministic simulated-cycle total (gated
/// exactly — a change means the simulated machines behaved differently)
/// and `wall_s` is the fastest pass (min-of-N, like the other probes).
pub fn measure_cycles(samples: usize) -> (u64, f64) {
    let points = cycle_probe_points();
    let batch = SimBatch::new(1).without_cache();
    let run = || {
        let t0 = Instant::now();
        let (results, stats) = batch.run_with_stats(&points);
        let wall = t0.elapsed().as_secs_f64();
        for r in results {
            r.expect("cycle-probe points are valid");
        }
        (stats.cycles, wall)
    };
    // Warm once before timing; the cycle count of the warm-up pass is the
    // reference every timed pass must reproduce.
    let (cycles, _) = run();
    let mut walls = Vec::with_capacity(samples);
    for _ in 0..samples {
        let (c, w) = run();
        assert_eq!(c, cycles, "cycle probe must simulate deterministically");
        walls.push(w);
    }
    (cycles, fastest(&walls))
}

/// Trace seed for the search probe, distinct from every experiment seed
/// and the other probe seeds.
const SEARCH_PROBE_SEED: u64 = 0x5EA0;

/// The search probe's pinned space: all six designs, a nine-point
/// 0.55–0.95 V supply grid, two applications — 108 candidates. The three
/// grid points above the 0.8 V nominal clamp to each design's rated
/// frequency, so the equal-frequency rule alone prunes 36/108 ≥ 30% of
/// the space before simulation; the drift gate pins that exactly.
pub fn search_probe_space() -> SearchSpace {
    SearchSpaceBuilder {
        apps: vec!["Gcc".to_owned(), "Bzip2".to_owned()],
        vdds: (0..9).map(|i| 0.55 + 0.05 * i as f64).collect(),
        seed: SEARCH_PROBE_SEED,
        warmup: Some(1_000),
        measure: Some(1_500),
        chunk: Some(32),
        ..SearchSpaceBuilder::default()
    }
    .build()
    .expect("the search-probe space is valid")
}

/// Run the pinned search-probe space (one job, pruning on) and return the
/// outcome plus the wall time. All four gated quantities (candidates,
/// pruned, simulated, frontier size) are pure functions of the spec.
pub fn measure_search(space: &DesignSpace) -> (SearchOutcome, f64) {
    let t0 = Instant::now();
    let out = run_search(space, &search_probe_space(), &SearchOptions::default(), |_| true)
        .expect("the search-probe space runs");
    (out, t0.elapsed().as_secs_f64())
}

/// Run the gated experiment subset (quick scale, one worker, collection on)
/// and the overhead probe, and return the measurement.
pub fn measure() -> Baseline {
    let was_enabled = m3d_obs::is_enabled();
    m3d_obs::enable();
    let selected = select(GATED_EXPERIMENTS).expect("gated experiments exist");
    let ctx = Ctx::new(RunScale::quick(), true);
    let outcomes = run_experiments(&ctx, &selected, 1, |_| {});
    let experiments = outcomes
        .iter()
        .map(|o| {
            assert!(
                o.report.is_ok(),
                "{} failed: {:?}",
                o.spec.name,
                o.report.as_ref().err()
            );
            ExperimentBaseline {
                name: o.spec.name.to_owned(),
                wall_s: o.wall_s,
                counters: gate_counters_of(o),
            }
        })
        .collect();
    let (solve_disabled_s, solve_enabled_s) = measure_overhead(40);
    let (batch_serial_s, batch_sharded_s, batch_lanes) = measure_batch(3);
    let (cycle_cycles, cycle_wall_s) = measure_cycles(3);
    let (search_out, search_wall_s) = measure_search(ctx.space());
    if !was_enabled {
        m3d_obs::disable();
    }
    Baseline {
        experiments,
        solve_disabled_s,
        solve_enabled_s,
        batch_serial_s,
        batch_sharded_s,
        batch_lanes: batch_lanes as u64,
        cycle_cycles,
        cycle_wall_s,
        search_candidates: search_out.stats.candidates,
        search_pruned: search_out.stats.pruned(),
        search_simulated: search_out.stats.simulated,
        search_frontier: search_out.stats.frontier,
        search_wall_s,
    }
}

/// Serialize a measurement as the `BENCH_repro.json` document.
pub fn baseline_json(b: &Baseline) -> Json {
    Json::obj([
        ("schema_version", Json::from(SCHEMA_VERSION)),
        ("tool", Json::from("perf_baseline")),
        ("scale", Json::from("quick")),
        ("jobs", Json::from(1u64)),
        (
            "gate_counters",
            Json::arr(GATE_COUNTERS.iter().map(|c| Json::from(*c))),
        ),
        (
            "experiments",
            Json::Obj(
                b.experiments
                    .iter()
                    .map(|e| {
                        (
                            e.name.clone(),
                            Json::obj([
                                ("wall_s", Json::from(e.wall_s)),
                                (
                                    "counters",
                                    Json::Obj(
                                        e.counters
                                            .iter()
                                            .map(|(n, v)| (n.clone(), Json::from(*v)))
                                            .collect(),
                                    ),
                                ),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "obs_overhead",
            Json::obj([
                ("solve_disabled_s", Json::from(b.solve_disabled_s)),
                ("solve_enabled_s", Json::from(b.solve_enabled_s)),
                ("overhead_pct", Json::from(b.overhead_pct())),
            ]),
        ),
        (
            "batch_probe",
            Json::obj([
                ("points", Json::from(BATCH_PROBE_POINTS)),
                ("lanes", Json::from(b.batch_lanes)),
                ("serial_s", Json::from(b.batch_serial_s)),
                ("sharded_s", Json::from(b.batch_sharded_s)),
                ("speedup", Json::from(b.batch_speedup())),
            ]),
        ),
        (
            "cycle_probe",
            Json::obj([
                ("points", Json::from(CYCLE_PROBE_APPS * 2)),
                ("cycles", Json::from(b.cycle_cycles)),
                ("wall_s", Json::from(b.cycle_wall_s)),
                ("cycles_per_sec", Json::from(b.cycles_per_sec())),
            ]),
        ),
        (
            "search_probe",
            Json::obj([
                ("candidates", Json::from(b.search_candidates)),
                ("pruned", Json::from(b.search_pruned)),
                ("simulated", Json::from(b.search_simulated)),
                ("frontier", Json::from(b.search_frontier)),
                ("wall_s", Json::from(b.search_wall_s)),
            ]),
        ),
    ])
}

/// Decode a `BENCH_repro.json` document back into a [`Baseline`].
pub fn baseline_from_json(j: &Json) -> Result<Baseline, String> {
    let experiments = match j.get("experiments") {
        Some(Json::Obj(fields)) => fields
            .iter()
            .map(|(name, e)| {
                let wall_s = match e.get("wall_s") {
                    Some(Json::Num(v)) => *v,
                    Some(Json::Int(i)) => *i as f64,
                    other => return Err(format!("{name}: bad wall_s {other:?}")),
                };
                let counters = match e.get("counters") {
                    Some(Json::Obj(cs)) => cs
                        .iter()
                        .map(|(n, v)| match v {
                            Json::Int(i) if *i >= 0 => Ok((n.clone(), *i as u64)),
                            other => Err(format!("{name}.{n}: bad counter {other:?}")),
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    other => return Err(format!("{name}: bad counters {other:?}")),
                };
                Ok(ExperimentBaseline {
                    name: name.clone(),
                    wall_s,
                    counters,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
        other => return Err(format!("bad experiments block: {other:?}")),
    };
    let probe = |block: &str, k: &str| match j.get(block).and_then(|o| o.get(k)) {
        Some(Json::Num(v)) => Ok(*v),
        Some(Json::Int(i)) => Ok(*i as f64),
        other => Err(format!("bad {block}.{k}: {other:?}")),
    };
    let uint = |block: &str, k: &str| match j.get(block).and_then(|o| o.get(k)) {
        Some(Json::Int(i)) if *i >= 0 => Ok(*i as u64),
        other => Err(format!("bad {block}.{k}: {other:?}")),
    };
    Ok(Baseline {
        experiments,
        solve_disabled_s: probe("obs_overhead", "solve_disabled_s")?,
        solve_enabled_s: probe("obs_overhead", "solve_enabled_s")?,
        batch_serial_s: probe("batch_probe", "serial_s")?,
        batch_sharded_s: probe("batch_probe", "sharded_s")?,
        batch_lanes: uint("batch_probe", "lanes")?,
        cycle_cycles: uint("cycle_probe", "cycles")?,
        cycle_wall_s: probe("cycle_probe", "wall_s")?,
        search_candidates: uint("search_probe", "candidates")?,
        search_pruned: uint("search_probe", "pruned")?,
        search_simulated: uint("search_probe", "simulated")?,
        search_frontier: uint("search_probe", "frontier")?,
        search_wall_s: probe("search_probe", "wall_s")?,
    })
}

/// Fraction of the committed cycle-probe throughput the current run must
/// reach for the gate to pass. Deliberately generous: it only fires when
/// the cycle loop gets ≳3× slower (the SoA/skip-ahead speedup wholesale
/// lost), so CI machine noise and neighbour load cannot trip it.
pub const CYCLE_THROUGHPUT_BUDGET: f64 = 0.30;

/// Ceiling on the instrumentation-overhead probe, percent. The probe is a
/// same-process enabled/disabled ratio (machine speed cancels out), so
/// unlike raw wall times it *is* gated: a run whose `overhead_pct` lands
/// above this budget means a metrics/telemetry record site got expensive
/// enough to tax the hot solver loop, which is a regression regardless of
/// the machine.
pub const OBS_OVERHEAD_BUDGET_PCT: f64 = 2.0;

/// Compare `current` against `committed` and list every counter drift (an
/// empty vector means the gate passes). Wall times are not compared, with
/// three exceptions: the cycle probe's simulated cycle count is gated
/// exactly (it is deterministic), its throughput must stay within
/// [`CYCLE_THROUGHPUT_BUDGET`] of the committed value, and the current
/// run's instrumentation overhead must stay under
/// [`OBS_OVERHEAD_BUDGET_PCT`] (a ratio, so machine-independent).
pub fn drift(committed: &Baseline, current: &Baseline) -> Vec<String> {
    let mut drifts = Vec::new();
    for cur in &current.experiments {
        let Some(base) = committed.experiments.iter().find(|e| e.name == cur.name)
        else {
            drifts.push(format!(
                "{}: not in the committed baseline (run `perf_baseline --write`)",
                cur.name
            ));
            continue;
        };
        for (name, v) in &cur.counters {
            let was = base
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0);
            if was != *v {
                drifts.push(format!("{}: {} drifted {} -> {}", cur.name, name, was, v));
            }
        }
    }
    for base in &committed.experiments {
        if !current.experiments.iter().any(|e| e.name == base.name) {
            drifts.push(format!("{}: missing from the current run", base.name));
        }
    }
    if committed.cycle_cycles != current.cycle_cycles {
        drifts.push(format!(
            "cycle_probe: cycles drifted {} -> {}",
            committed.cycle_cycles, current.cycle_cycles
        ));
    }
    let (was, now) = (committed.cycles_per_sec(), current.cycles_per_sec());
    if was > 0.0 && now < was * CYCLE_THROUGHPUT_BUDGET {
        drifts.push(format!(
            "cycle_probe: throughput regressed beyond budget: \
             {now:.0} cycles/s vs {was:.0} committed \
             (floor {:.0} = {CYCLE_THROUGHPUT_BUDGET} x committed)",
            was * CYCLE_THROUGHPUT_BUDGET
        ));
    }
    let overhead = current.overhead_pct();
    if overhead > OBS_OVERHEAD_BUDGET_PCT {
        drifts.push(format!(
            "obs_overhead: instrumentation costs {overhead:.2}% on the probe solve, \
             over the {OBS_OVERHEAD_BUDGET_PCT}% budget"
        ));
    }
    for (name, was, now) in [
        ("candidates", committed.search_candidates, current.search_candidates),
        ("pruned", committed.search_pruned, current.search_pruned),
        ("simulated", committed.search_simulated, current.search_simulated),
        ("frontier", committed.search_frontier, current.search_frontier),
    ] {
        if was != now {
            drifts.push(format!("search_probe: {name} drifted {was} -> {now}"));
        }
    }
    drifts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake(name: &str, counters: &[(&str, u64)]) -> ExperimentBaseline {
        ExperimentBaseline {
            name: name.to_owned(),
            wall_s: 0.25,
            counters: counters
                .iter()
                .map(|(n, v)| ((*n).to_owned(), *v))
                .collect(),
        }
    }

    fn fake_baseline() -> Baseline {
        Baseline {
            experiments: vec![
                fake("table3", &[("thermal.iterations", 0), ("core.uops", 10)]),
                fake("table6", &[("sram.organizations.evaluated", 42)]),
            ],
            solve_disabled_s: 0.010,
            solve_enabled_s: 0.0101,
            batch_serial_s: 0.080,
            batch_sharded_s: 0.020,
            batch_lanes: 4,
            cycle_cycles: 320_000,
            cycle_wall_s: 0.040,
            search_candidates: 108,
            search_pruned: 36,
            search_simulated: 72,
            search_frontier: 9,
            search_wall_s: 0.5,
        }
    }

    #[test]
    fn json_round_trips() {
        let b = fake_baseline();
        let j = baseline_json(&b);
        let parsed = Json::parse(&j.render()).expect("renders valid JSON");
        let back = baseline_from_json(&parsed).expect("decodes");
        assert_eq!(back, b);
        assert!((b.overhead_pct() - 1.0).abs() < 1e-9);
        assert!((b.batch_speedup() - 4.0).abs() < 1e-9);
        assert!((b.cycles_per_sec() - 8_000_000.0).abs() < 1e-6);
    }

    #[test]
    fn drift_reports_changes_additions_and_removals() {
        let committed = fake_baseline();
        assert!(drift(&committed, &committed).is_empty());

        let mut changed = fake_baseline();
        changed.experiments[0].counters[1].1 = 11;
        let d = drift(&committed, &changed);
        assert_eq!(d.len(), 1);
        assert!(d[0].contains("core.uops drifted 10 -> 11"), "{d:?}");

        let mut extra = fake_baseline();
        extra.experiments.push(fake("fig5", &[]));
        assert!(drift(&committed, &extra)[0].contains("not in the committed baseline"));

        let mut missing = fake_baseline();
        missing.experiments.pop();
        assert!(drift(&committed, &missing)[0].contains("missing from the current run"));
    }

    #[test]
    fn wall_time_differences_never_drift() {
        let committed = fake_baseline();
        let mut current = fake_baseline();
        current.experiments[0].wall_s *= 100.0;
        // A uniformly slower machine leaves the overhead *ratio* alone —
        // both solve sides scale together, so nothing drifts.
        current.solve_enabled_s *= 100.0;
        current.solve_disabled_s *= 100.0;
        // Within the generous budget: 2x slower cycle probe is noise.
        current.cycle_wall_s *= 2.0;
        assert!(drift(&committed, &current).is_empty());
    }

    #[test]
    fn overhead_over_budget_drifts_regardless_of_the_committed_value() {
        let committed = fake_baseline();
        // The fake baseline's probe sits at 1%: inside the 2% budget.
        assert!(committed.overhead_pct() < OBS_OVERHEAD_BUDGET_PCT);

        let mut taxed = fake_baseline();
        taxed.solve_enabled_s = taxed.solve_disabled_s * 1.05; // 5% overhead
        let d = drift(&committed, &taxed);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("obs_overhead"), "{d:?}");
        assert!(d[0].contains("budget"), "{d:?}");

        // Noise-dominated probes (enabled faster than disabled) read as
        // negative overhead and never drift.
        let mut noisy = fake_baseline();
        noisy.solve_enabled_s = noisy.solve_disabled_s * 0.98;
        assert!(drift(&committed, &noisy).is_empty());
    }

    #[test]
    fn cycle_probe_gates_cycles_exactly_and_throughput_by_budget() {
        let committed = fake_baseline();

        let mut wrong_cycles = fake_baseline();
        wrong_cycles.cycle_cycles += 1;
        let d = drift(&committed, &wrong_cycles);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("cycles drifted"), "{d:?}");

        let mut too_slow = fake_baseline();
        too_slow.cycle_wall_s = committed.cycle_wall_s / CYCLE_THROUGHPUT_BUDGET * 1.01;
        let d = drift(&committed, &too_slow);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].contains("throughput regressed"), "{d:?}");

        // A *faster* run never drifts, no matter how much faster.
        let mut faster = fake_baseline();
        faster.cycle_wall_s /= 100.0;
        assert!(drift(&committed, &faster).is_empty());
    }

    #[test]
    fn gated_experiments_resolve_and_exclude_schedule_dependent_ones() {
        let selected = select(GATED_EXPERIMENTS).expect("all gated names resolve");
        assert_eq!(selected.len(), GATED_EXPERIMENTS.len());
        assert!(
            !GATED_EXPERIMENTS.contains(&"fig8"),
            "fig8 iteration counts depend on the machine's core count"
        );
        // Gate counters are sorted and unique (stable file layout).
        let mut sorted = GATE_COUNTERS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, GATE_COUNTERS);
    }

    #[test]
    fn cycle_probe_simulates_the_pinned_set_deterministically() {
        // measure_cycles itself asserts every timed pass reproduces the
        // warm pass's cycle count; two full probes must also agree.
        let (c1, w1) = measure_cycles(1);
        let (c2, _) = measure_cycles(1);
        assert_eq!(c1, c2, "pinned point set must simulate deterministically");
        assert!(c1 > 0 && w1 > 0.0);
        assert_eq!(cycle_probe_points().len(), CYCLE_PROBE_APPS * 2);
    }

    #[test]
    fn search_probe_drift_gates_all_four_integers() {
        let committed = fake_baseline();
        for field in 0..4usize {
            let mut cur = fake_baseline();
            match field {
                0 => cur.search_candidates += 1,
                1 => cur.search_pruned += 1,
                2 => cur.search_simulated += 1,
                _ => cur.search_frontier += 1,
            }
            let d = drift(&committed, &cur);
            assert_eq!(d.len(), 1, "{d:?}");
            assert!(d[0].contains("search_probe:"), "{d:?}");
        }
        // Wall time is informational.
        let mut slow = fake_baseline();
        slow.search_wall_s *= 100.0;
        assert!(drift(&committed, &slow).is_empty());
    }

    #[test]
    fn search_probe_prunes_thirty_percent_without_changing_the_frontier() {
        use m3d_core::search::frontier_json;
        let space = DesignSpace::compute();
        let spec = search_probe_space();
        let (out, wall) = measure_search(&space);
        assert!(wall > 0.0);
        assert_eq!(out.stats.candidates, 108);
        assert!(
            out.stats.pruned() * 10 >= out.stats.candidates * 3,
            "probe must prune >=30%: {:?}",
            out.stats
        );
        // Pruning must be invisible in the frontier: brute force over the
        // same spec lands on the byte-identical answer.
        let brute = run_search(
            &space,
            &spec,
            &SearchOptions {
                prune: false,
                ..SearchOptions::default()
            },
            |_| true,
        )
        .expect("brute-force probe runs");
        assert!(brute.stats.pruned() < out.stats.pruned());
        assert_eq!(
            frontier_json(&out.frontier).render(),
            frontier_json(&brute.frontier).render()
        );
    }

    #[test]
    fn overhead_probe_runs_and_restores_state() {
        m3d_obs::disable();
        let (off, on) = measure_overhead(3);
        assert!(off > 0.0 && on > 0.0);
        assert!(!m3d_obs::is_enabled(), "probe must restore enablement");
    }
}
