//! Benchmark harness support: shared helpers for the per-table/figure
//! Criterion benches and the `repro` binary that regenerates every table
//! and figure of the paper.

#![warn(missing_docs)]

pub mod artifacts;
pub mod baseline;
pub mod serve_probe;

use m3d_core::planner::DesignSpace;
use std::sync::OnceLock;

/// A process-wide design space so benches don't recompute the planner.
pub fn shared_design_space() -> &'static DesignSpace {
    static SPACE: OnceLock<DesignSpace> = OnceLock::new();
    SPACE.get_or_init(DesignSpace::compute)
}
