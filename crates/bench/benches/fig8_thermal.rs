//! Bench: the Figure 8 thermal study — the steady-state grid solve per
//! stack, plus a miniature run of the full experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use m3d_bench::shared_design_space;
use m3d_core::experiments::fig8_thermal;
use m3d_core::experiments::RunScale;
use m3d_tech::layers::LayerStack;
use m3d_thermal::floorplan::Floorplan;
use m3d_thermal::solver::{solve, LayerPower, ThermalConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for (name, stack) in [
        ("planar", LayerStack::planar_2d()),
        ("m3d", LayerStack::m3d()),
        ("tsv3d", LayerStack::tsv3d()),
    ] {
        g.bench_function(format!("grid_solve_{name}"), |b| {
            let layers: Vec<LayerPower> = match stack.device_layer_indices().len() {
                1 => {
                    let fp = Floorplan::ryzen_like(9.0e-6);
                    let p = fp.uniform_power(6.4);
                    vec![LayerPower {
                        floorplan: fp,
                        power_w: p,
                    }]
                }
                _ => {
                    let fp = Floorplan::ryzen_like(9.0e-6).scaled(0.5);
                    let p = fp.uniform_power(3.2);
                    vec![
                        LayerPower {
                            floorplan: fp.clone(),
                            power_w: p.clone(),
                        },
                        LayerPower {
                            floorplan: fp,
                            power_w: p,
                        },
                    ]
                }
            };
            b.iter(|| std::hint::black_box(solve(&stack, &layers, &ThermalConfig::default())))
        });
    }
    g.finish();

    let rows = fig8_thermal::run(
        shared_design_space(),
        RunScale {
            warmup: 20_000,
            measure: 30_000,
        },
        3,
    );
    for r in rows {
        println!(
            "[fig8] {}: base {:.1}C tsv {:.1}C m3d {:.1}C (hot: {})",
            r.app, r.base_c, r.tsv3d_c, r.m3d_het_c, r.hottest_block
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
