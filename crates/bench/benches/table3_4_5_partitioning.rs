//! Bench: regenerate Tables 3-5 (BP/WP/PP of the RF and BPT).

use criterion::{criterion_group, criterion_main, Criterion};
use m3d_core::experiments::table3_4_5_partitioning as t;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_tables");
    g.sample_size(20);
    g.bench_function("table3_bit_partitioning", |b| {
        b.iter(|| std::hint::black_box(t::table3()))
    });
    g.bench_function("table4_word_partitioning", |b| {
        b.iter(|| std::hint::black_box(t::table4()))
    });
    g.bench_function("table5_port_partitioning", |b| {
        b.iter(|| std::hint::black_box(t::table5()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
