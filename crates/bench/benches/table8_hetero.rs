//! Bench: regenerate Table 8 (hetero-layer asymmetric partitioning),
//! plus the ablation sweeps DESIGN.md calls out: bottom-share fraction and
//! top-layer upsize factor for the register file.

use criterion::{criterion_group, criterion_main, Criterion};
use m3d_sram::hetero::partition_hetero;
use m3d_sram::structures::StructureId;
use m3d_tech::via::ViaKind;
use m3d_tech::TechnologyNode;

fn bench(c: &mut Criterion) {
    let node = TechnologyNode::n22();
    let mut g = c.benchmark_group("table8");
    g.sample_size(10);
    for id in [StructureId::Rf, StructureId::Iq, StructureId::L2] {
        g.bench_function(format!("hetero_search_{}", id.label()), |b| {
            b.iter(|| std::hint::black_box(partition_hetero(&id.spec(), &node, ViaKind::Miv)))
        });
    }
    g.finish();

    let (rf, r) = partition_hetero(&StructureId::Rf.spec(), &node, ViaKind::Miv);
    println!(
        "[table8] RF hetero: {} split {}/{} upsize {:.1}x -> {r}",
        rf.strategy, rf.bottom_share, rf.top_share, rf.top_upsize
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
