//! Bench: the Figure 6/7 single-core study — timed per (app, design)
//! simulation window so the benchmark stays tractable; the `repro` binary
//! runs the full 21-app sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use m3d_bench::shared_design_space;
use m3d_core::configs::DesignPoint;
use m3d_core::experiments::fig6_fig7_single_core as f67;
use m3d_core::experiments::RunScale;
use m3d_power::model::CorePowerModel;
use m3d_uarch::core::Core;
use m3d_workloads::spec::spec_by_name;
use m3d_workloads::TraceGenerator;

fn bench(c: &mut Criterion) {
    let space = shared_design_space();
    let mut g = c.benchmark_group("fig6_fig7");
    g.sample_size(10);
    for d in [DesignPoint::Base, DesignPoint::M3dHet] {
        g.bench_function(format!("sim_window_gobmk_{}", d.label()), |b| {
            b.iter(|| {
                let p = spec_by_name("Gobmk").expect("profile");
                let gen = TraceGenerator::new(&p, 7, 0, 1);
                let mut core = Core::new(0, d.core_config(), gen);
                let _ = core.run(10_000);
                std::hint::black_box(core.run(20_000))
            })
        });
    }
    g.bench_function("energy_accounting", |b| {
        let p = spec_by_name("Gobmk").expect("profile");
        let gen = TraceGenerator::new(&p, 7, 0, 1);
        let mut core = Core::new(0, DesignPoint::M3dHet.core_config(), gen);
        let _ = core.run(10_000);
        let r = core.run(20_000);
        let model = CorePowerModel::new_22nm();
        let cfg = DesignPoint::M3dHet.power_config(space);
        b.iter(|| std::hint::black_box(model.energy(&r, &cfg)))
    });
    g.finish();

    // Print a miniature Figure 6/7 series so the bench run reports shape.
    let scale = RunScale {
        warmup: 20_000,
        measure: 30_000,
    };
    let study = f67::run(space, scale);
    println!("[fig6] average speedups: {:?}", study.average_speedup());
    println!("[fig7] average energies: {:?}", study.average_energy());
}

criterion_group!(benches, bench);
criterion_main!(benches);
