//! Overhead of the instrumentation sites on a serial thermal solve.
//!
//! The contract (DESIGN.md, "Observability") is that a disabled
//! instrumentation site costs one relaxed atomic load — under 2% on a real
//! solve even at the smallest grid where a solve is just microseconds.
//! This bench measures the same solve three ways: collection disabled,
//! collection enabled, and enabled with a span around each solve, so a
//! regression in the fast path shows up as the first two diverging.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use m3d_tech::layers::LayerStack;
use m3d_thermal::floorplan::Floorplan;
use m3d_thermal::model::{SweepMode, ThermalModel};
use m3d_thermal::solver::ThermalConfig;

fn solve_once(model: &ThermalModel, powers: &[Vec<f64>]) {
    let (grid, stats) = model
        .solve_with(black_box(powers), None, SweepMode::Serial)
        .expect("bench model solves");
    black_box((grid, stats.iterations));
}

fn bench_obs_overhead(c: &mut Criterion) {
    let cfg = ThermalConfig {
        nx: 32,
        ny: 32,
        ..ThermalConfig::default()
    };
    let fp = Floorplan::ryzen_like(9.0e-6);
    let powers = vec![fp.uniform_power(6.4)];
    let model = ThermalModel::new(&LayerStack::planar_2d(), &[fp], &cfg)
        .expect("bench model builds");

    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(30);
    m3d_obs::disable();
    g.bench_function("thermal_solve/obs_disabled", |b| {
        b.iter(|| solve_once(&model, &powers))
    });
    m3d_obs::enable();
    g.bench_function("thermal_solve/obs_enabled", |b| {
        b.iter(|| solve_once(&model, &powers))
    });
    g.bench_function("thermal_solve/obs_enabled_with_span", |b| {
        b.iter(|| {
            let _span = m3d_obs::span("bench", "solve");
            solve_once(&model, &powers)
        })
    });
    m3d_obs::disable();
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
