//! Bench: regenerate Table 1 / Table 2 / Figure 2 (via-level comparisons).

use criterion::{criterion_group, criterion_main, Criterion};
use m3d_core::experiments::table1_table2_fig2_vias as vias;

fn bench(c: &mut Criterion) {
    c.bench_function("table1_via_overhead", |b| {
        b.iter(|| std::hint::black_box(vias::table1()))
    });
    c.bench_function("table2_via_electrical", |b| {
        b.iter(|| std::hint::black_box(vias::table2()))
    });
    c.bench_function("fig2_relative_areas", |b| {
        b.iter(|| std::hint::black_box(vias::fig2()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
