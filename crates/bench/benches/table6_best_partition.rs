//! Bench: regenerate Table 6 (best iso-layer partition per structure) —
//! the full planner sweep over all twelve structures and both via
//! technologies, plus ablations over the design choices DESIGN.md calls
//! out (forcing BP on the multiported RF; TSV diameter sensitivity).

use criterion::{criterion_group, criterion_main, Criterion};
use m3d_bench::shared_design_space;
use m3d_sram::model2d::analyze_2d;
use m3d_sram::partition3d::{partition, Strategy};
use m3d_sram::structures::StructureId;
use m3d_tech::process::ProcessCorner;
use m3d_tech::via::ViaKind;
use m3d_tech::TechnologyNode;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6");
    g.sample_size(10);
    g.bench_function("full_planner_sweep", |b| {
        b.iter(|| std::hint::black_box(m3d_core::planner::DesignSpace::compute()))
    });
    g.finish();

    // Ablation: force BP on the RF instead of the selected PP.
    let node = TechnologyNode::n22();
    let rf = StructureId::Rf.spec();
    let base = analyze_2d(&rf, &node, ProcessCorner::bulk_hp());
    let pp = partition(&rf, &node, Strategy::Port, ViaKind::Miv);
    let bp = partition(&rf, &node, Strategy::Bit, ViaKind::Miv);
    println!(
        "[ablation] RF PP latency reduction {:+.1}% vs forced BP {:+.1}%",
        pp.metrics.reduction_vs(&base.metrics).latency_pct,
        bp.metrics.reduction_vs(&base.metrics).latency_pct,
    );
    let space = shared_design_space();
    println!(
        "[table6] min M3D latency reduction {:+.1}% -> iso frequency {:.2} GHz",
        space
            .iso_best
            .iter()
            .map(|p| p.reduction.latency_pct)
            .fold(f64::INFINITY, f64::min),
        space.derived.iso_ghz
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
