//! Bench: the Figure 9/10 multicore study — per-design simulation windows
//! plus a miniature full-series print.

use criterion::{criterion_group, criterion_main, Criterion};
use m3d_bench::shared_design_space;
use m3d_core::configs::MulticoreDesign;
use m3d_core::experiments::fig9_fig10_multicore as f910;
use m3d_core::experiments::RunScale;
use m3d_uarch::multicore::Multicore;
use m3d_workloads::parallel::parallel_by_name;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_fig10");
    g.sample_size(10);
    for d in [MulticoreDesign::Base4, MulticoreDesign::M3dHet2x8] {
        g.bench_function(format!("sim_window_ocean_{}", d.label()), |b| {
            b.iter(|| {
                let p = parallel_by_name("Ocean").expect("profile");
                let mut mc = Multicore::new(d.core_config(), &p, 3, d.n_cores());
                let _ = mc.run(5_000);
                std::hint::black_box(mc.run(10_000))
            })
        });
    }
    g.finish();

    let study = f910::run(
        shared_design_space(),
        RunScale {
            warmup: 15_000,
            measure: 20_000,
        },
    );
    println!("[fig9] average speedups: {:?}", study.average_speedup());
    println!("[fig10] average energies: {:?}", study.average_energy());
}

criterion_group!(benches, bench);
criterion_main!(benches);
