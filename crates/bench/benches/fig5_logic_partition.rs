//! Bench: regenerate Figure 5 / Section 3.1 logic results (adder STA,
//! slack-driven hetero partition, ALU+bypass gains).

use criterion::{criterion_group, criterion_main, Criterion};
use m3d_core::experiments::fig5_logic;
use m3d_logic::adder::carry_skip_adder;
use m3d_logic::partition::partition_hetero;

fn bench(c: &mut Criterion) {
    c.bench_function("fig5_adder_netlist_sta", |b| {
        b.iter(|| std::hint::black_box(carry_skip_adder(64, 4).timing()))
    });
    c.bench_function("fig5_hetero_partition", |b| {
        let nl = carry_skip_adder(64, 4);
        b.iter(|| std::hint::black_box(partition_hetero(&nl, 0.17)))
    });
    c.bench_function("fig5_full_results", |b| {
        b.iter(|| std::hint::black_box(fig5_logic::fig5()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
