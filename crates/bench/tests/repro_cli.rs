//! End-to-end checks of the `repro` binary: argument parsing, the exact
//! serial byte stream for selected experiments, and artifact writing.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn selected_experiments_print_the_serial_byte_stream() {
    let out = repro()
        .args(["--quick", "table1", "table2"])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "{:?}", out);
    let expected = format!(
        "{}\n{}\n",
        m3d_core::experiments::table1_table2_fig2_vias::table1_text(),
        m3d_core::experiments::table1_table2_fig2_vias::table2_text()
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), expected);
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    let out = repro().arg("nope").output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn bad_jobs_value_is_a_usage_error() {
    for bad in ["0", "65", "100000", "-1", "two"] {
        let out = repro()
            .args(["--jobs", bad, "table1"])
            .output()
            .expect("repro runs");
        assert_eq!(out.status.code(), Some(2), "--jobs {bad} must be rejected");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("between 1 and 64"),
            "--jobs {bad}: unclear error: {err}"
        );
        assert!(err.contains("usage:"), "--jobs {bad}: no usage line: {err}");
    }
    // The boundary values are accepted.
    for ok in ["1", "64"] {
        let out = repro()
            .args(["--quick", "--jobs", ok, "table1"])
            .output()
            .expect("repro runs");
        assert!(out.status.success(), "--jobs {ok} must be accepted: {out:?}");
    }
}

#[test]
fn out_dir_receives_artifacts_and_manifest() {
    let dir = std::env::temp_dir().join(format!("m3d-repro-cli-{}", std::process::id()));
    let out = repro()
        .args(["--quick", "--jobs=2", "fig5", "table7"])
        .arg(format!("--out-dir={}", dir.display()))
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "{:?}", out);
    assert!(dir.join("fig5.json").exists());
    assert!(dir.join("table7.json").exists());
    let manifest =
        std::fs::read_to_string(dir.join("manifest.json")).expect("manifest written");
    assert!(manifest.contains("\"errors\": 0"), "{manifest}");
    assert!(manifest.contains("\"tool\": \"repro\""));
    let fig5 = std::fs::read_to_string(dir.join("fig5.json")).expect("artifact written");
    assert!(fig5.contains("\"ok\": true"));
    assert!(fig5.contains("\"rows\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_writes_chrome_trace_with_spans_from_three_crates() {
    let dir = std::env::temp_dir().join(format!("m3d-repro-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.json");
    // section5 exercises the thermal solver; table6 walks the SRAM design
    // space; both run under per-experiment registry spans.
    let out = repro()
        .args(["--quick", "--jobs=2", "section5", "table6"])
        .arg(format!("--trace-out={}", trace.display()))
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "{:?}", out);
    let text = std::fs::read_to_string(&trace).expect("trace written");
    let parsed = m3d_core::report::Json::parse(&text).expect("trace is valid JSON");
    let events = match parsed.get("traceEvents") {
        Some(m3d_core::report::Json::Arr(v)) => v,
        other => panic!("traceEvents missing: {other:?}"),
    };
    assert!(!events.is_empty());
    let cats: std::collections::BTreeSet<&str> = events
        .iter()
        .filter_map(|e| match e.get("cat") {
            Some(m3d_core::report::Json::Str(s)) => Some(s.as_str()),
            _ => None,
        })
        .collect();
    for needed in ["thermal", "sram", "registry"] {
        assert!(cats.contains(needed), "no `{needed}` spans in {cats:?}");
    }
    // Worker lanes are named for the trace viewer.
    assert!(text.contains("repro-worker-0"), "no worker lane metadata");
    // Every complete event carries the Chrome-trace keys.
    let complete = events
        .iter()
        .find(|e| e.get("ph") == Some(&m3d_core::report::Json::from("X")))
        .expect("at least one span");
    for key in ["name", "cat", "pid", "tid", "ts", "dur"] {
        assert!(complete.get(key).is_some(), "span lacks `{key}`");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_flag_prints_table_on_stderr_and_leaves_stdout_identical() {
    let base = repro()
        .args(["--quick", "table3"])
        .output()
        .expect("repro runs");
    let with_metrics = repro()
        .args(["--quick", "--metrics", "table3"])
        .output()
        .expect("repro runs");
    assert!(base.status.success() && with_metrics.status.success());
    // Instrumentation must not perturb the rendered tables.
    assert_eq!(base.stdout, with_metrics.stdout);
    let err = String::from_utf8_lossy(&with_metrics.stderr);
    assert!(err.contains("metrics over the whole run"), "{err}");
    assert!(err.contains("sram.organizations.evaluated"), "{err}");
    let base_err = String::from_utf8_lossy(&base.stderr);
    assert!(!base_err.contains("metrics over the whole run"), "{base_err}");
}

#[test]
fn artifacts_carry_solver_and_warm_start_counters() {
    let dir = std::env::temp_dir().join(format!("m3d-repro-metrics-{}", std::process::id()));
    let out = repro()
        .args(["--quick", "--jobs=2", "section5"])
        .arg(format!("--out-dir={}", dir.display()))
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "{:?}", out);
    let text =
        std::fs::read_to_string(dir.join("section5.json")).expect("artifact written");
    let parsed = m3d_core::report::Json::parse(&text).expect("artifact is valid JSON");
    assert_eq!(
        parsed.get("schema_version"),
        Some(&m3d_core::report::Json::Int(2))
    );
    let metrics = m3d_core::report::metrics_from_json(
        parsed.get("metrics").expect("metrics block"),
    )
    .expect("metrics decode");
    assert!(
        metrics.counter("thermal.iterations").is_some_and(|v| v > 0),
        "no solver iterations in {:?}",
        metrics.counters
    );
    let warm = metrics.counter("thermal.warm_start.hits").unwrap_or(0)
        + metrics.counter("thermal.warm_start.misses").unwrap_or(0);
    assert!(warm > 0, "no warm-start accounting in {:?}", metrics.counters);
    assert!(
        metrics.histogram("thermal.residual_k").is_some(),
        "no residual histogram"
    );
    // The manifest aggregates the same counters across experiments.
    let manifest =
        std::fs::read_to_string(dir.join("manifest.json")).expect("manifest written");
    let parsed = m3d_core::report::Json::parse(&manifest).expect("manifest is valid JSON");
    let agg = m3d_core::report::metrics_from_json(
        parsed.get("metrics").expect("aggregated metrics"),
    )
    .expect("metrics decode");
    assert!(agg.counter("thermal.iterations").is_some_and(|v| v > 0));
    std::fs::remove_dir_all(&dir).ok();
}
