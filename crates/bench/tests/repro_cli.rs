//! End-to-end checks of the `repro` binary: argument parsing, the exact
//! serial byte stream for selected experiments, and artifact writing.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn selected_experiments_print_the_serial_byte_stream() {
    let out = repro()
        .args(["--quick", "table1", "table2"])
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "{:?}", out);
    let expected = format!(
        "{}\n{}\n",
        m3d_core::experiments::table1_table2_fig2_vias::table1_text(),
        m3d_core::experiments::table1_table2_fig2_vias::table2_text()
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), expected);
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    let out = repro().arg("nope").output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown experiment"));
}

#[test]
fn bad_jobs_value_is_a_usage_error() {
    let out = repro()
        .args(["--jobs", "0", "table1"])
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn out_dir_receives_artifacts_and_manifest() {
    let dir = std::env::temp_dir().join(format!("m3d-repro-cli-{}", std::process::id()));
    let out = repro()
        .args(["--quick", "--jobs=2", "fig5", "table7"])
        .arg(format!("--out-dir={}", dir.display()))
        .output()
        .expect("repro runs");
    assert!(out.status.success(), "{:?}", out);
    assert!(dir.join("fig5.json").exists());
    assert!(dir.join("table7.json").exists());
    let manifest =
        std::fs::read_to_string(dir.join("manifest.json")).expect("manifest written");
    assert!(manifest.contains("\"errors\": 0"), "{manifest}");
    assert!(manifest.contains("\"tool\": \"repro\""));
    let fig5 = std::fs::read_to_string(dir.join("fig5.json")).expect("artifact written");
    assert!(fig5.contains("\"ok\": true"));
    assert!(fig5.contains("\"rows\""));
    std::fs::remove_dir_all(&dir).ok();
}
