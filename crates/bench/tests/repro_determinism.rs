//! Determinism of the `repro` orchestrator under parallelism: `--jobs 1`
//! and `--jobs 4` must render byte-identical text (up to wall-clock digits
//! in the solver/timing lines) and semantically equal JSON artifacts.
//!
//! The runs use extra-small simulation windows so two full `all` passes
//! stay cheap; determinism does not depend on the window size.

use m3d_bench::artifacts::{max_overlap, write_artifacts, RunInfo};
use m3d_core::experiments::registry::{run_experiments, select, Ctx, Outcome};
use m3d_core::experiments::RunScale;

/// Tiny windows (the determinism argument is scale-independent).
const TEST_SCALE: RunScale = RunScale {
    warmup: 10_000,
    measure: 12_000,
};

/// Render every section of every successful outcome in emit order,
/// collapsing digit runs on the two kinds of lines that legitimately vary
/// run to run (solver wall-clock milliseconds and experiment wall times) —
/// a run of digits can change width between runs ("9.8 ms" vs "10.2 ms").
fn normalized_text(emitted: &[(&'static str, String)]) -> String {
    let mut out = String::new();
    for (_, text) in emitted {
        for line in text.lines() {
            if line.contains("thermal solver") || line.contains("experiment wall time") {
                let mut in_digits = false;
                for c in line.chars() {
                    if c.is_ascii_digit() {
                        if !in_digits {
                            out.push('#');
                        }
                        in_digits = true;
                    } else {
                        out.push(c);
                        in_digits = false;
                    }
                }
            } else {
                out.push_str(line);
            }
            out.push('\n');
        }
    }
    out
}

fn run_all(jobs: usize) -> (Vec<Outcome>, String) {
    let ctx = Ctx::new(TEST_SCALE, true);
    let selected = select(&[]).expect("empty selection means all");
    let mut emitted: Vec<(&'static str, String)> = Vec::new();
    let outcomes = run_experiments(&ctx, &selected, jobs, |o| {
        if let Ok(r) = &o.report {
            for s in &r.sections {
                emitted.push((o.spec.name, s.text.clone()));
            }
        }
    });
    let text = normalized_text(&emitted);
    (outcomes, text)
}

#[test]
fn jobs1_and_jobs4_agree() {
    let (serial, text1) = run_all(1);
    let (parallel, text4) = run_all(4);

    assert_eq!(serial.len(), parallel.len());
    assert!(serial.iter().all(|o| o.report.is_ok()), "serial run failed");
    assert!(
        parallel.iter().all(|o| o.report.is_ok()),
        "parallel run failed"
    );

    // Rendered text is byte-identical once volatile timing digits are
    // masked.
    assert_eq!(text1, text4, "rendered text differs between --jobs 1 and 4");

    // Structured rows, metadata, and µop counts are exactly equal; thermal
    // stats are equal in every field except measured wall time.
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.spec.name, b.spec.name, "emit order must follow registry");
        let (ra, rb) = (
            a.report.as_ref().expect("checked ok"),
            b.report.as_ref().expect("checked ok"),
        );
        assert_eq!(ra.rows, rb.rows, "{}: rows differ", a.spec.name);
        assert_eq!(ra.meta, rb.meta, "{}: meta differs", a.spec.name);
        assert_eq!(ra.uops, rb.uops, "{}: uops differ", a.spec.name);
        match (&ra.thermal, &rb.thermal) {
            (None, None) => {}
            (Some(sa), Some(sb)) => {
                assert_eq!(sa.solves, sb.solves, "{}", a.spec.name);
                assert_eq!(sa.total_iterations, sb.total_iterations, "{}", a.spec.name);
                assert_eq!(sa.warm_starts, sb.warm_starts, "{}", a.spec.name);
                assert_eq!(sa.cache_hits, sb.cache_hits, "{}", a.spec.name);
                assert_eq!(sa.non_converged, sb.non_converged, "{}", a.spec.name);
                assert_eq!(sa.max_residual_k, sb.max_residual_k, "{}", a.spec.name);
            }
            _ => panic!("{}: thermal stats presence differs", a.spec.name),
        }
    }

    // The parallel run must actually have overlapped experiments.
    assert!(
        max_overlap(&parallel) >= 2,
        "no two experiments overlapped under --jobs 4"
    );

    // Artifact writing round-trips: a manifest with zero errors plus one
    // JSON file per registry entry.
    let dir = std::env::temp_dir().join(format!("m3d-repro-det-{}", std::process::id()));
    let info = RunInfo {
        quick: true,
        jobs: 4,
        scale: TEST_SCALE,
        wanted: Vec::new(),
    };
    let manifest = write_artifacts(&dir, &info, &parallel, 1.0).expect("temp dir writable");
    let text = std::fs::read_to_string(&manifest).expect("manifest written");
    assert!(text.contains("\"errors\": 0"), "{text}");
    assert!(text.contains("\"max_overlap\""));
    for o in &parallel {
        assert!(
            dir.join(format!("{}.json", o.spec.name)).exists(),
            "{} artifact missing",
            o.spec.name
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
