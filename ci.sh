#!/usr/bin/env bash
# Minimal CI gate: build, test, lint — fully offline (no registry access).
# Mirrors the tier-1 acceptance criteria in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test -q =="
cargo test -q --workspace --offline

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== repro --quick all (artifact smoke test) =="
rm -rf target/repro-ci
./target/release/repro --quick all --out-dir target/repro-ci
test -f target/repro-ci/manifest.json || {
  echo "ci.sh: manifest.json missing" >&2
  exit 1
}
grep -q '"errors": 0' target/repro-ci/manifest.json || {
  echo "ci.sh: manifest reports experiment errors" >&2
  exit 1
}
grep -q '"metrics"' target/repro-ci/manifest.json || {
  echo "ci.sh: manifest lacks the aggregated metrics block" >&2
  exit 1
}

echo "== perf_baseline --check (counter-drift gate) =="
# Deterministic integer counters (solver sweeps, warm-start hits, search
# candidates, µops, batch-engine points/hits/reuses/cycles) must match the
# committed baseline exactly; wall times are informational. Refresh
# intentional changes with:
#   ./target/release/perf_baseline --write BENCH_repro.json
./target/release/perf_baseline --check BENCH_repro.json
grep -q '"uarch.batch.points"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the batch-engine gate counters" >&2
  exit 1
}
grep -q '"batch_probe"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the batch sharding probe" >&2
  exit 1
}

echo "== ci.sh: all checks passed =="
