#!/usr/bin/env bash
# Minimal CI gate: build, test, lint — fully offline (no registry access).
# Mirrors the tier-1 acceptance criteria in ROADMAP.md.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "== cargo build --release =="
cargo build --release --workspace --offline

echo "== cargo test -q =="
cargo test -q --workspace --offline

echo "== cargo clippy -- -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== repro --quick all (artifact smoke test) =="
rm -rf target/repro-ci
./target/release/repro --quick all --out-dir target/repro-ci
test -f target/repro-ci/manifest.json || {
  echo "ci.sh: manifest.json missing" >&2
  exit 1
}
grep -q '"errors": 0' target/repro-ci/manifest.json || {
  echo "ci.sh: manifest reports experiment errors" >&2
  exit 1
}
grep -q '"metrics"' target/repro-ci/manifest.json || {
  echo "ci.sh: manifest lacks the aggregated metrics block" >&2
  exit 1
}

echo "== serve smoke test (ephemeral port, loadgen, graceful shutdown) =="
# Start the query daemon on an ephemeral port, let loadgen drive one
# planner + sim + stats round trip, then check SIGTERM drains and exits 0.
SERVE_PORT_FILE=target/serve-ci.port
rm -f "$SERVE_PORT_FILE"
./target/release/serve --quick --port-file "$SERVE_PORT_FILE" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [ -s "$SERVE_PORT_FILE" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || {
    echo "ci.sh: serve died before listening" >&2
    exit 1
  }
  sleep 0.1
done
SERVE_ADDR=$(cat "$SERVE_PORT_FILE")
[ -n "$SERVE_ADDR" ] || {
  echo "ci.sh: serve never wrote its port file" >&2
  exit 1
}
./target/release/loadgen --addr "$SERVE_ADDR" --smoke || {
  echo "ci.sh: serve smoke queries failed" >&2
  kill -9 "$SERVE_PID" 2>/dev/null || true
  exit 1
}
# One streamed `plan` against the same warm daemon: partial frontier lines
# must arrive before a final ok:true line with a non-empty frontier.
./target/release/loadgen --addr "$SERVE_ADDR" --plan-smoke || {
  echo "ci.sh: plan streaming smoke failed" >&2
  kill -9 "$SERVE_PID" 2>/dev/null || true
  exit 1
}
# A small telemetry-reporting load run against the same warm daemon: the
# summary must carry the server-side percentiles pulled from the daemon's
# `telemetry` method (rolling 60 s window), proving the windowed
# histograms are live under real traffic.
LOADGEN_OUT=$(./target/release/loadgen --addr "$SERVE_ADDR" --conns 2 --requests 10 --telemetry) || {
  echo "ci.sh: telemetry load run failed" >&2
  kill -9 "$SERVE_PID" 2>/dev/null || true
  exit 1
}
echo "$LOADGEN_OUT"
echo "$LOADGEN_OUT" | grep -q '"server_p99_us"' || {
  echo "ci.sh: loadgen --telemetry summary lacks server-side p99" >&2
  kill -9 "$SERVE_PID" 2>/dev/null || true
  exit 1
}
# High-connection smoke: 64 concurrent connections against the daemon's
# default 2 workers — connections ≫ workers, the regime the epoll event
# loop exists for. Every connection must still get every answer.
./target/release/loadgen --addr "$SERVE_ADDR" --conns 64 --requests 4 || {
  echo "ci.sh: high-connection load smoke (64 conns, 2 workers) failed" >&2
  kill -9 "$SERVE_PID" 2>/dev/null || true
  exit 1
}
kill -TERM "$SERVE_PID"
SERVE_RC=0
wait "$SERVE_PID" || SERVE_RC=$?
[ "$SERVE_RC" -eq 0 ] || {
  echo "ci.sh: serve did not shut down gracefully (exit $SERVE_RC)" >&2
  exit 1
}
rm -f "$SERVE_PORT_FILE"
# The stats method must expose every documented serve.* counter even when
# it never fired — serve.plan_aborted in particular, so dashboards can
# tell "no plans aborted" from "counter missing".
printf '{"id":1,"method":"stats"}\n' | ./target/release/serve --oneshot --quick \
  | grep -q '"serve.plan_aborted"' || {
  echo "ci.sh: stats answer lacks the serve.plan_aborted counter" >&2
  exit 1
}

echo "== sharded serve smoke test (router, 2 shards, whole-tree shutdown) =="
# The router fronts two spawned shard daemons; clients see the same wire
# protocol on one ephemeral port. SIGTERM must drain the whole process
# tree: the router exits 0 and both spawned shard pids are gone.
ROUTER_PORT_FILE=target/router-ci.port
ROUTER_LOG=target/router-ci.log
rm -f "$ROUTER_PORT_FILE" "$ROUTER_LOG"
./target/release/router --quick --shards 2 --port-file "$ROUTER_PORT_FILE" 2>"$ROUTER_LOG" &
ROUTER_PID=$!
for _ in $(seq 1 100); do
  [ -s "$ROUTER_PORT_FILE" ] && break
  kill -0 "$ROUTER_PID" 2>/dev/null || {
    echo "ci.sh: router died before listening" >&2
    cat "$ROUTER_LOG" >&2
    exit 1
  }
  sleep 0.1
done
ROUTER_ADDR=$(cat "$ROUTER_PORT_FILE")
[ -n "$ROUTER_ADDR" ] || {
  echo "ci.sh: router never wrote its port file" >&2
  exit 1
}
SHARD_PIDS=$(sed -n 's/.*spawned shard [0-9]* pid \([0-9]*\) on .*/\1/p' "$ROUTER_LOG")
[ "$(echo "$SHARD_PIDS" | wc -w)" -eq 2 ] || {
  echo "ci.sh: router did not report 2 spawned shard pids" >&2
  cat "$ROUTER_LOG" >&2
  kill -9 "$ROUTER_PID" 2>/dev/null || true
  exit 1
}
./target/release/loadgen --addr "$ROUTER_ADDR" --smoke || {
  echo "ci.sh: sharded smoke queries failed" >&2
  kill -9 "$ROUTER_PID" 2>/dev/null || true
  exit 1
}
./target/release/loadgen --addr "$ROUTER_ADDR" --conns 8 --requests 6 || {
  echo "ci.sh: sharded load smoke failed" >&2
  kill -9 "$ROUTER_PID" 2>/dev/null || true
  exit 1
}
# The router's own stats must show the fan-out counters and the live
# shard topology.
ROUTER_STATS=$(exec 3<>"/dev/tcp/${ROUTER_ADDR%:*}/${ROUTER_ADDR##*:}" \
  && printf '{"id":1,"method":"stats"}\n' >&3 && IFS= read -r L <&3 && echo "$L")
echo "$ROUTER_STATS" | grep -q '"serve.shard_subrequests"' || {
  echo "ci.sh: router stats lack the serve.shard_* counters" >&2
  kill -9 "$ROUTER_PID" 2>/dev/null || true
  exit 1
}
echo "$ROUTER_STATS" | grep -q '"topology"' || {
  echo "ci.sh: router stats lack the shard topology block" >&2
  kill -9 "$ROUTER_PID" 2>/dev/null || true
  exit 1
}
kill -TERM "$ROUTER_PID"
ROUTER_RC=0
wait "$ROUTER_PID" || ROUTER_RC=$?
[ "$ROUTER_RC" -eq 0 ] || {
  echo "ci.sh: router did not shut down gracefully (exit $ROUTER_RC)" >&2
  exit 1
}
for pid in $SHARD_PIDS; do
  if kill -0 "$pid" 2>/dev/null; then
    echo "ci.sh: shard pid $pid survived router shutdown" >&2
    kill -9 "$pid" 2>/dev/null || true
    exit 1
  fi
done
rm -f "$ROUTER_PORT_FILE" "$ROUTER_LOG"

echo "== perf_baseline --check (counter-drift gate) =="
# Deterministic integer counters (solver sweeps, warm-start hits, search
# candidates, µops, batch-engine points/hits/reuses/cycles) must match the
# committed baseline exactly; wall times are informational. The check also
# re-runs the obs-overhead probe with every live record site (including
# the serve telemetry windows) and fails if instrumentation costs more
# than OBS_OVERHEAD_BUDGET_PCT (2%) on the probe solve. Refresh
# intentional changes with:
#   ./target/release/perf_baseline --write BENCH_repro.json
./target/release/perf_baseline --check BENCH_repro.json
grep -q '"uarch.batch.points"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the batch-engine gate counters" >&2
  exit 1
}
grep -q '"batch_probe"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the batch sharding probe" >&2
  exit 1
}
# --check above already fails on a cycles/sec regression beyond the budget
# (CYCLE_THROUGHPUT_BUDGET in m3d-bench); this guards the block's presence.
grep -q '"cycle_probe"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the cycle-loop throughput probe" >&2
  exit 1
}
grep -q '"serve_probe"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the serve throughput probe" >&2
  exit 1
}
grep -q '"serve\.' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the serve.* request counters" >&2
  exit 1
}
grep -q '"serve.requests.sim"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the per-method serve request counters" >&2
  exit 1
}
grep -q '"serve.write_errors"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the serve.write_errors counter" >&2
  exit 1
}
grep -q '"serve.plan_aborted"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the serve.plan_aborted counter" >&2
  exit 1
}
# The connections-≫-workers load tier: 128 closed-loop connections on a
# 2-worker daemon, with throughput and tail latency recorded.
grep -q '"conns": 128' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the serve_probe load tier (128 conns)" >&2
  exit 1
}
grep -q '"p99_us"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json load tier lacks the p99 latency" >&2
  exit 1
}
# The shard tier: the same closed loop through a 2-shard router, with the
# router's serve.shard_* fan-out counters captured alongside.
grep -q '"shards": 2' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the serve_probe shard tier" >&2
  exit 1
}
grep -q '"serve.shard_' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the serve.shard_* counters" >&2
  exit 1
}
grep -q '"search_probe"' BENCH_repro.json || {
  echo "ci.sh: BENCH_repro.json lacks the design-space search probe" >&2
  exit 1
}

echo "== cargo doc --no-deps (rustdoc gate: no broken links, no missing docs) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline --quiet

echo "== ci.sh: all checks passed =="
