//! Visualise the Figure 5 partition: which blocks of the 64-bit carry-skip
//! adder land in the slow top layer, and how the slack profile drives it.
//!
//! ```text
//! cargo run --release --example logic_partition_map [penalty]
//! ```

use m3d_logic::adder::carry_skip_adder;
use m3d_logic::partition::{partition_hetero, Layer};
use m3d_logic::prefix::kogge_stone_adder;

fn main() {
    let penalty: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.17);

    let nl = carry_skip_adder(64, 4);
    let part = partition_hetero(&nl, penalty);
    let timing = nl.timing();

    println!("== 64-bit carry-skip adder, top layer {:.0}% slower ==", penalty * 100.0);
    println!(
        "gates {} | critical path {:.1} FO4 | partitioned {:.1} FO4 | top layer {:.0}%\n",
        nl.logic_gate_count(),
        part.delay_2d_fo4,
        part.delay_fo4,
        part.top_fraction() * 100.0
    );

    // Per 4-bit block: slack of the propagate block and where its pieces go.
    println!("block  P-slack  propagate  ripple  skip-mux  cond-sums");
    for k in 0..16 {
        let find = |label: String| {
            nl.iter()
                .find(|(_, g)| g.label == label)
                .map(|(id, _)| id)
                .expect("label exists")
        };
        let layer_of = |id| match part.assignment[id] {
            Layer::Bottom => "bottom",
            Layer::Top => "top",
        };
        let p_id = find(format!("P[{k}]"));
        let c_id = find(format!("c[{}]", k * 4 + 3));
        let m_id = find(format!("skip[{k}]"));
        let s_id = find(format!("s0[{}]", k * 4 + 1));
        println!(
            "{k:>5} {:>8.1} {:>10} {:>7} {:>9} {:>10}",
            timing.slack(p_id),
            layer_of(p_id),
            layer_of(c_id),
            layer_of(m_id),
            layer_of(s_id),
        );
    }
    println!("\nThe skip-mux spine (critical) stays in the bottom layer; the");
    println!("propagate blocks' slack grows with distance from the LSB, so");
    println!("the high blocks move to the top layer (paper Section 4.1.1).");

    // Contrast: the balanced Kogge-Stone tree has far less slack.
    let ks = kogge_stone_adder(64);
    let ks_part = partition_hetero(&ks, penalty);
    let inputs = ks.len() - ks.logic_gate_count();
    let ks_top = ks_part
        .assignment
        .iter()
        .skip(inputs)
        .filter(|&&l| l == Layer::Top)
        .count();
    println!(
        "\nContrast — Kogge-Stone: {:.1} FO4 deep, only {:.0}% of {} gates fit the top layer.",
        ks.timing().critical_path,
        100.0 * ks_top as f64 / ks.logic_gate_count() as f64,
        ks.logic_gate_count(),
    );
}
