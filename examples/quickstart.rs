//! Quickstart: partition a core's storage structures for monolithic 3D and
//! derive the design frequencies, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use m3d_sram::hetero::partition_hetero;
use m3d_sram::model2d::analyze_2d;
use m3d_sram::partition3d::best_partition;
use m3d_sram::structures::StructureId;
use m3d_tech::process::ProcessCorner;
use m3d_tech::{TechnologyNode, ViaKind};

fn main() {
    let node = TechnologyNode::n22();

    println!("== Partitioning the core's storage structures for M3D ==\n");
    println!(
        "{:<6} {:>10} {:>6} {:>9} {:>9} {:>9}   hetero (slow top layer)",
        "struct", "2D access", "best", "latency", "energy", "area"
    );
    let mut worst_iso = f64::INFINITY;
    let mut worst_het = f64::INFINITY;
    for id in StructureId::ALL {
        let spec = id.spec();
        let base = analyze_2d(&spec, &node, ProcessCorner::bulk_hp());
        let (strategy, _, r) = best_partition(&spec, &node, ViaKind::Miv);
        let (h, hr) = partition_hetero(&spec, &node, ViaKind::Miv);
        worst_iso = worst_iso.min(r.latency_pct);
        worst_het = worst_het.min(hr.latency_pct);
        println!(
            "{:<6} {:>7.0} ps {:>6} {:>+8.0}% {:>+8.0}% {:>+8.0}%   {} b/t {}/{} x{:.1}: {:+.0}% lat",
            id.label(),
            base.metrics.access_s * 1e12,
            strategy.abbrev(),
            r.latency_pct,
            r.energy_pct,
            r.footprint_pct,
            h.strategy.abbrev(),
            h.bottom_share,
            h.top_share,
            h.top_upsize,
            hr.latency_pct,
        );
    }

    // Section 6.1: the cycle time follows the least-improved structure.
    let base_f = 3.3;
    println!("\n== Derived frequencies (base {base_f} GHz) ==");
    println!(
        "iso-layer M3D:    {:.2} GHz  (least-improved structure: {:+.0}%)",
        base_f / (1.0 - worst_iso / 100.0),
        worst_iso
    );
    println!(
        "hetero-layer M3D: {:.2} GHz  (least-improved structure: {:+.0}%)",
        base_f / (1.0 - worst_het / 100.0),
        worst_het
    );
    println!("\nThe hetero-layer design recovers most of the iso-layer gain");
    println!("despite its 17% slower top layer — the paper's core result.");
}
