//! Design-space exploration: the ablations DESIGN.md calls out.
//!
//! 1. Strategy choice per structure (PP vs BP vs WP on the register file).
//! 2. Hetero-layer bottom-share and upsize sweeps for the RF.
//! 3. TSV diameter sensitivity: how thick can a via get before 3D
//!    partitioning stops paying?
//!
//! ```text
//! cargo run --release --example design_space_explorer
//! ```

use m3d_sram::model2d::{analyze_2d, analyze_with_org};
use m3d_sram::partition3d::{partition, port_partition_plans, Strategy};
use m3d_sram::structures::StructureId;
use m3d_tech::process::{LayerProcesses, ProcessCorner};
use m3d_tech::via::Via;
use m3d_tech::{TechnologyNode, ViaKind};

fn main() {
    let node = TechnologyNode::n22();
    let rf = StructureId::Rf.spec();
    let base = analyze_2d(&rf, &node, ProcessCorner::bulk_hp());

    println!("== 1. Strategy ablation on the register file (M3D) ==");
    for s in Strategy::ALL {
        let p = partition(&rf, &node, s, ViaKind::Miv);
        println!("  {}: {}", s, p.metrics.reduction_vs(&base.metrics));
    }

    println!("\n== 2. Hetero-layer RF: bottom-ports x upsize sweep ==");
    println!("  (access latency in ps; 2D = {:.0} ps)", base.metrics.access_s * 1e12);
    print!("  b\\u ");
    for u in [1.0, 1.5, 2.0, 3.0] {
        print!("{u:>8.1}x");
    }
    println!();
    let procs = LayerProcesses::hetero();
    let via = Via::miv(&node);
    let org = analyze_2d(&rf, &node, procs.bottom).organization;
    for p_b in 9..=13 {
        print!("  {p_b:>2}  ");
        for u in [1.0, 1.5, 2.0, 3.0] {
            let (bottom, top, _) =
                port_partition_plans(&rf, &node, procs, &via, p_b, 18 - p_b, u);
            let ab = analyze_with_org(&node, &bottom, org);
            let at = analyze_with_org(&node, &top, org);
            let acc = ab.metrics.access_s.max(at.metrics.access_s);
            print!("{:>9.0}", acc * 1e12);
        }
        println!();
    }

    println!("\n== 3. TSV diameter sensitivity (bit partitioning of the RF) ==");
    for d_um in [0.5, 1.0, 1.3, 2.0, 3.0, 5.0] {
        let mut via = Via::tsv_aggressive();
        via.diameter_um = d_um;
        // Capacitance scales roughly with diameter.
        via.capacitance_f = 2.5e-15 * d_um / 1.3;
        let r = m3d_sram::partition3d::partition_with_via(&rf, &node, Strategy::Bit, &via)
            .metrics
            .reduction_vs(&base.metrics);
        println!("  {d_um:>4.1} um: {r}");
    }
    println!("\n  -> latency gains decay steadily with via diameter; and port");
    println!("     partitioning (not shown) is catastrophic for any TSV size,");
    println!("     which is why fine-grained 3D needs MIV-class vias (Section 2).");
}
