//! Thermal scenario: how much power can each integration style dissipate
//! before the junction limit (~100 C)?
//!
//! Sweeps total core power for the planar 2D, M3D, and TSV3D stacks
//! (3D stacks fold the floorplan to half footprint and split power across
//! the two device layers), reporting the peak temperature and the maximum
//! sustainable power per stack — the quantitative form of the paper's
//! "M3D is thermally efficient; TSV3D is not" (Figure 8, Section 7.1.3).
//!
//! ```text
//! cargo run --release --example thermal_budget
//! ```

use m3d_tech::layers::{LayerStack, StackKind};
use m3d_thermal::floorplan::Floorplan;
use m3d_thermal::solver::{solve, LayerPower, ThermalConfig};

const TJMAX_C: f64 = 100.0;
const CORE_AREA_M2: f64 = 9.0e-6;

fn peak_at(stack: &LayerStack, power_w: f64) -> f64 {
    let cfg = ThermalConfig::default();
    let sol = if stack.kind == StackKind::Planar2d {
        let fp = Floorplan::ryzen_like(CORE_AREA_M2);
        let p = fp.uniform_power(power_w);
        solve(
            stack,
            &[LayerPower {
                floorplan: fp,
                power_w: p,
            }],
            &cfg,
        )
    } else {
        let fp = Floorplan::ryzen_like(CORE_AREA_M2).scaled(0.5);
        let p = fp.uniform_power(power_w / 2.0);
        let layer = LayerPower {
            floorplan: fp,
            power_w: p,
        };
        solve(stack, &[layer.clone(), layer], &cfg)
    };
    sol.peak_c
}

fn main() {
    let stacks = [
        ("2D planar", LayerStack::planar_2d()),
        ("M3D", LayerStack::m3d()),
        ("TSV3D", LayerStack::tsv3d()),
    ];

    println!("== Peak temperature vs core power (ambient 45 C) ==\n");
    print!("{:<10}", "power");
    for (name, _) in &stacks {
        print!("{name:>10}");
    }
    println!();
    for power in [4.0, 6.4, 8.0, 10.0, 12.0, 16.0] {
        print!("{:<10}", format!("{power:.1} W"));
        for (_, stack) in &stacks {
            print!("{:>9.1}C", peak_at(stack, power));
        }
        println!();
    }

    println!("\n== Maximum power under Tjmax = {TJMAX_C} C (bisection) ==\n");
    for (name, stack) in &stacks {
        let (mut lo, mut hi) = (1.0f64, 60.0f64);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if peak_at(stack, mid) < TJMAX_C {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        println!("{name:<10} {:.1} W", 0.5 * (lo + hi));
    }
    println!("\nFolding to half footprint doubles power density, so both 3D");
    println!("stacks sustain less raw power than 2D — but M3D's sub-micron");
    println!("inter-layer dielectric buys it a ~30% higher budget than TSV3D,");
    println!("whose thick die-to-die bond traps the far layer's heat (Fig. 8).");
    println!("Since the M3D core also draws ~25% less power at the same work,");
    println!("its effective thermal headroom nearly matches the 2D core's.");
}
