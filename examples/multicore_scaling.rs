//! Multicore scenario: the iso-power argument of Section 7.2.
//!
//! Runs one parallel application (Ocean by default; pass another name as an
//! argument) across the paper's multicore designs, and reports completion
//! time, chip power, and energy — showing that M3D-Het-2X runs twice the
//! cores of the 2D baseline at a similar power budget.
//!
//! ```text
//! cargo run --release --example multicore_scaling [app] [work_per_core]
//! ```

use m3d_core::configs::MulticoreDesign;
use m3d_core::planner::DesignSpace;
use m3d_power::model::CorePowerModel;
use m3d_uarch::multicore::Multicore;
use m3d_workloads::parallel::{parallel_by_name, splash_parsec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let app_name = args.first().map(String::as_str).unwrap_or("Ocean");
    let work: u64 = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80_000);
    let Some(app) = parallel_by_name(app_name) else {
        eprintln!("unknown app {app_name}; available:");
        for p in splash_parsec() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(1);
    };

    eprintln!("[multicore_scaling] computing design space...");
    let space = DesignSpace::compute();
    let model = CorePowerModel::new_22nm();

    println!(
        "\n== {app_name}: {} uops/core across the Table 11 multicore designs ==\n",
        work
    );
    println!(
        "{:<12} {:>5} {:>9} {:>10} {:>9} {:>9} {:>9}",
        "design", "cores", "f (GHz)", "time/work", "speedup", "power", "energy"
    );
    let mut base_tpw = None;
    let mut base_epw = None;
    for d in MulticoreDesign::ALL {
        let cfg = d.core_config();
        let mut mc = Multicore::new(cfg.clone(), &app, 0xAB, d.n_cores());
        let _ = mc.run(work / 2); // warm-up
        let r = mc.run(work);
        let e = model.energy(&r, &d.power_config(&space));
        let tpw = r.time_s() / r.instructions as f64;
        let epw = e.total_j() / r.instructions as f64;
        let base_t = *base_tpw.get_or_insert(tpw);
        let base_e = *base_epw.get_or_insert(epw);
        println!(
            "{:<12} {:>5} {:>9.2} {:>7.2} ps {:>8.2}x {:>7.2} W {:>8.2}",
            d.label(),
            d.n_cores(),
            cfg.freq_ghz,
            tpw * 1e12,
            base_t / tpw,
            e.average_power_w(),
            epw / base_e,
        );
    }
    println!("\ntime/work = completion time per unit of total work;");
    println!("energy is per unit of work, normalised to the 4-core Base.");
    println!("M3D-Het-2X: twice the cores at reduced voltage — roughly double");
    println!("the throughput for a moderate power increase and less energy/work.");
}
