//! Property-based tests on the core data structures and model invariants,
//! spanning all the workspace crates.

use m3d_sram::model2d::analyze_2d;
use m3d_sram::partition3d::{applicable, partition, Strategy as PartStrategy};
use m3d_sram::spec::ArraySpec;
use m3d_tech::node::TechnologyNode;
use m3d_tech::process::ProcessCorner;
use m3d_tech::via::ViaKind;
use m3d_thermal::floorplan::{Block, Floorplan};
use m3d_thermal::model::{SweepMode, ThermalModel};
use m3d_thermal::solver::ThermalConfig;
use m3d_tech::layers::LayerStack;
use proptest::prelude::*;

/// A rows × cols grid of uniform blocks covering a square die of `area` m².
fn grid_floorplan(rows: usize, cols: usize, area_m2: f64) -> Floorplan {
    let side = area_m2.sqrt();
    let (bw, bh) = (side / cols as f64, side / rows as f64);
    let blocks = (0..rows)
        .flat_map(|r| {
            (0..cols).map(move |c| Block {
                name: format!("B{r}_{c}"),
                x_m: c as f64 * bw,
                y_m: r as f64 * bh,
                w_m: bw,
                h_m: bh,
            })
        })
        .collect();
    Floorplan {
        width_m: side,
        height_m: side,
        blocks,
    }
}

/// Deterministic uneven per-block powers summing to `total_w`.
fn skewed_powers(n_blocks: usize, total_w: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..n_blocks).map(|i| 1.0 + (i % 5) as f64).collect();
    let sum: f64 = weights.iter().sum();
    weights.iter().map(|w| total_w * w / sum).collect()
}

fn arb_spec() -> impl proptest::strategy::Strategy<Value = ArraySpec> + Clone {
    (
        (16usize..=2048),
        (8usize..=256),
        (1usize..=8),
        (0usize..=4),
    )
        .prop_map(|(words, bits, r, w)| {
            ArraySpec::ram("prop", words.next_power_of_two(), bits.next_power_of_two(), r, w)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // --- m3d-sram -------------------------------------------------------

    #[test]
    fn sram_2d_metrics_are_finite_and_positive(spec in arb_spec()) {
        let node = TechnologyNode::n22();
        let a = analyze_2d(&spec, &node, ProcessCorner::bulk_hp());
        prop_assert!(a.metrics.access_s.is_finite() && a.metrics.access_s > 0.0);
        prop_assert!(a.metrics.energy_j.is_finite() && a.metrics.energy_j > 0.0);
        prop_assert!(a.metrics.footprint_um2.is_finite() && a.metrics.footprint_um2 > 0.0);
    }

    #[test]
    fn sram_m3d_partition_reduces_footprint(spec in arb_spec(), word in any::<bool>()) {
        let node = TechnologyNode::n22();
        let strategy = if word { PartStrategy::Word } else { PartStrategy::Bit };
        prop_assume!(applicable(&spec, strategy));
        let base = analyze_2d(&spec, &node, ProcessCorner::bulk_hp());
        let p = partition(&spec, &node, strategy, ViaKind::Miv);
        // Per-layer footprint must shrink (that is the point of folding),
        // and reductions can never exceed 100%.
        prop_assert!(p.metrics.footprint_um2 < base.metrics.footprint_um2);
        let r = p.metrics.reduction_vs(&base.metrics);
        prop_assert!(r.latency_pct <= 100.0 && r.energy_pct <= 100.0 && r.footprint_pct <= 100.0);
    }

    #[test]
    fn sram_bigger_arrays_never_get_faster(words in 32usize..512, bits in 16usize..128) {
        let node = TechnologyNode::n22();
        let small = ArraySpec::ram("s", words.next_power_of_two(), bits.next_power_of_two(), 1, 1);
        let large = ArraySpec::ram(
            "l",
            (words * 4).next_power_of_two(),
            (bits * 2).next_power_of_two(),
            1,
            1,
        );
        let a = analyze_2d(&small, &node, ProcessCorner::bulk_hp());
        let b = analyze_2d(&large, &node, ProcessCorner::bulk_hp());
        prop_assert!(b.metrics.footprint_um2 > a.metrics.footprint_um2);
        prop_assert!(b.metrics.access_s >= 0.8 * a.metrics.access_s);
    }

    // --- m3d-logic ------------------------------------------------------

    #[test]
    fn logic_partition_never_stretches_critical_path(
        width in 2usize..=16,
        penalty in 0.0f64..0.5,
    ) {
        let nl = m3d_logic::adder::carry_skip_adder(width.next_power_of_two().max(8), 4);
        let p = m3d_logic::partition::partition_hetero(&nl, penalty);
        prop_assert!(p.delay_ratio() <= 1.0 + 1e-9, "ratio {}", p.delay_ratio());
        prop_assert!((0.0..=1.0).contains(&p.top_fraction()));
    }

    #[test]
    fn logic_slack_is_nonnegative_at_nominal(entries in 4usize..=128) {
        let nl = m3d_logic::select::select_tree(entries, 4);
        let t = nl.timing();
        for (id, _) in nl.iter() {
            prop_assert!(t.slack(id) > -1e-9);
        }
    }

    // --- m3d-uarch cache ------------------------------------------------

    #[test]
    fn cache_hits_after_access_and_bounded_missrate(addrs in proptest::collection::vec(0u64..1u64 << 20, 1..200)) {
        let mut c = m3d_uarch::cache::Cache::new(m3d_uarch::config::CacheConfig {
            size_bytes: 4096,
            ways: 4,
            line_bytes: 64,
            rt_cycles: 1,
        });
        for &a in &addrs {
            let _ = c.access(a, false);
            // Immediately re-accessing the same address must hit.
            prop_assert!(c.access(a, false).is_hit());
        }
        prop_assert!(c.miss_rate() <= 1.0);
        prop_assert!(c.accesses >= c.misses);
    }

    // --- m3d-workloads --------------------------------------------------

    #[test]
    fn traces_are_deterministic_and_well_formed(seed in any::<u64>(), app in 0usize..21) {
        let p = &m3d_workloads::spec::spec2006()[app];
        let mut g1 = m3d_workloads::TraceGenerator::new(p, seed, 0, 1);
        let mut g2 = m3d_workloads::TraceGenerator::new(p, seed, 0, 1);
        for _ in 0..500 {
            let a = g1.next_op();
            let b = g2.next_op();
            prop_assert_eq!(a, b);
            if let Some(d) = a.dst {
                prop_assert!(d < 32);
            }
            for s in a.srcs.into_iter().flatten() {
                prop_assert!(s < 32);
            }
            if a.kind.is_mem() {
                prop_assert!(a.addr > 0);
            }
        }
    }

    // --- m3d-thermal ----------------------------------------------------

    #[test]
    fn thermal_monotone_in_power(p1 in 1.0f64..8.0, extra in 0.5f64..8.0) {
        let fp = m3d_thermal::floorplan::Floorplan::ryzen_like(9.0e-6);
        let cfg = m3d_thermal::solver::ThermalConfig {
            nx: 12,
            ny: 12,
            ..Default::default()
        };
        let run = |w: f64| {
            let power = fp.uniform_power(w);
            m3d_thermal::solver::solve(
                &m3d_tech::layers::LayerStack::planar_2d(),
                &[m3d_thermal::solver::LayerPower {
                    floorplan: fp.clone(),
                    power_w: power,
                }],
                &cfg,
            )
            .peak_c
        };
        prop_assert!(run(p1 + extra) > run(p1));
    }

    #[test]
    fn thermal_parallel_red_black_matches_serial(
        rows in 1usize..5,
        cols in 1usize..5,
        area_scale in 0.5f64..2.0,
        watts in 1.0f64..12.0,
        n in 10usize..22,
    ) {
        // The red-black sweep must give the same answer no matter how many
        // threads execute it: within a colour no cell reads another updated
        // cell, so the schedule cannot change the arithmetic.
        let fp = grid_floorplan(rows, cols, 4.5e-6 * area_scale);
        let powers = vec![
            skewed_powers(fp.blocks.len(), watts * 0.55),
            skewed_powers(fp.blocks.len(), watts * 0.45),
        ];
        let cfg = ThermalConfig { nx: n, ny: n, ..Default::default() };
        let model = ThermalModel::new(&LayerStack::m3d(), &[fp.clone(), fp], &cfg)
            .expect("grid floorplans and default config are valid");
        let (serial, s_stats) = model
            .solve_with(&powers, None, SweepMode::Serial)
            .expect("serial solve");
        let (parallel, p_stats) = model
            .solve_with(&powers, None, SweepMode::Parallel)
            .expect("parallel solve");
        prop_assert!(p_stats.threads >= 2);
        prop_assert_eq!(s_stats.iterations, p_stats.iterations);
        for (ls, lp) in serial.layer_temps_c.iter().zip(&parallel.layer_temps_c) {
            for (a, b) in ls.iter().zip(lp) {
                prop_assert!(
                    (a - b).abs() <= cfg.tolerance_k,
                    "serial {} vs parallel {}", a, b
                );
            }
        }
        prop_assert!((serial.peak_c - parallel.peak_c).abs() <= cfg.tolerance_k);
    }

    #[test]
    fn thermal_warm_start_reaches_cold_start_field(
        rows in 1usize..4,
        cols in 1usize..4,
        w1 in 2.0f64..8.0,
        bump in 1.05f64..1.5,
    ) {
        // Warm-starting from a nearby field must land on the same steady
        // state as a cold start (the fixed point does not depend on the
        // initial guess), in no more iterations.
        let fp = grid_floorplan(rows, cols, 9.0e-6);
        let cfg = ThermalConfig { nx: 14, ny: 14, ..Default::default() };
        let model = ThermalModel::new(&LayerStack::planar_2d(), std::slice::from_ref(&fp), &cfg)
            .expect("valid model");
        let p1 = vec![skewed_powers(fp.blocks.len(), w1)];
        let p2 = vec![skewed_powers(fp.blocks.len(), w1 * bump)];
        let (first, _) = model.solve(&p1).expect("first solve");
        let (cold, cold_stats) = model.solve(&p2).expect("cold solve");
        let (warm, warm_stats) = model
            .solve_from(&p2, Some(&first))
            .expect("warm solve");
        prop_assert!(warm_stats.warm_start && !cold_stats.warm_start);
        prop_assert!(warm_stats.iterations <= cold_stats.iterations);
        for (lc, lw) in cold.layer_temps_c.iter().zip(&warm.layer_temps_c) {
            for (a, b) in lc.iter().zip(lw) {
                // Both runs stop within tolerance_k per sweep of the same
                // fixed point; allow a few tolerances of slack between them.
                prop_assert!((a - b).abs() <= 20.0 * cfg.tolerance_k, "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn thermal_steady_state_conserves_power(
        rows in 1usize..5,
        cols in 1usize..5,
        watts in 1.0f64..15.0,
    ) {
        // At steady state all injected power must exit through the sink's
        // convection boundary.
        let fp = grid_floorplan(rows, cols, 9.0e-6);
        let cfg = ThermalConfig { nx: 16, ny: 16, ..Default::default() };
        let model = ThermalModel::new(&LayerStack::planar_2d(), std::slice::from_ref(&fp), &cfg)
            .expect("valid model");
        let powers = vec![skewed_powers(fp.blocks.len(), watts)];
        let (sol, stats) = model.solve(&powers).expect("solve");
        prop_assert!(stats.converged);
        let g_amb = 1.0 / (cfg.convection_k_per_w * (cfg.nx * cfg.ny) as f64);
        let out_w: f64 = sol.layer_temps_c[0]
            .iter()
            .map(|t| g_amb * (t - cfg.ambient_c))
            .sum();
        prop_assert!(
            (out_w - watts).abs() / watts < 0.05,
            "in {} W vs out {} W", watts, out_w
        );
    }

    // --- m3d-power ------------------------------------------------------

    #[test]
    fn dvfs_curve_round_trips(v in 0.55f64..1.1) {
        let curve = m3d_power::dvfs::VfCurve::n22(3.3);
        let f = curve.frequency_at(v);
        let v2 = curve.voltage_for(f);
        prop_assert!((v - v2).abs() < 1e-4, "{v} vs {v2}");
    }

    #[test]
    fn via_area_scales_with_diameter(d1 in 0.5f64..3.0, scale in 1.1f64..3.0) {
        let mut a = m3d_tech::via::Via::tsv_aggressive();
        a.diameter_um = d1;
        let mut b = a.clone();
        b.diameter_um = d1 * scale;
        prop_assert!(b.occupied_area_um2() > a.occupied_area_um2());
    }
}
