//! Cross-crate integration tests: the full pipeline from technology
//! parameters through partition planning, cycle-level simulation, energy
//! accounting, and thermal solving.

use m3d_core::configs::{DesignPoint, MulticoreDesign};
use m3d_core::planner::DesignSpace;
use m3d_power::model::CorePowerModel;
use m3d_sram::partition3d::Strategy;
use m3d_sram::structures::StructureId;
use m3d_tech::layers::LayerStack;
use m3d_thermal::floorplan::Floorplan;
use m3d_thermal::solver::{solve, LayerPower, ThermalConfig};
use m3d_uarch::core::Core;
use m3d_uarch::multicore::Multicore;
use m3d_workloads::parallel::parallel_by_name;
use m3d_workloads::spec::spec_by_name;
use m3d_workloads::TraceGenerator;
use std::sync::OnceLock;

fn space() -> &'static DesignSpace {
    static S: OnceLock<DesignSpace> = OnceLock::new();
    S.get_or_init(DesignSpace::compute)
}

#[test]
fn planner_to_frequency_to_simulation_to_energy() {
    // Planner: the RF is port-partitioned (paper Table 6 headline).
    let s = space();
    assert_eq!(s.iso_of(StructureId::Rf).strategy, Strategy::Port);

    // Frequencies: derived values track Table 11 within 15%.
    let f_iso = DesignPoint::M3dIso.derived_frequency_ghz(s);
    assert!((f_iso - 3.83).abs() / 3.83 < 0.15, "iso {f_iso}");

    // Simulate one app under Base and M3D-Het and account the energy.
    let model = CorePowerModel::new_22nm();
    let mut results = Vec::new();
    for d in [DesignPoint::Base, DesignPoint::M3dHet] {
        let p = spec_by_name("Gobmk").expect("profile");
        let gen = TraceGenerator::new(&p, 5, 0, 1);
        let mut core = Core::new(0, d.core_config(), gen);
        let _ = core.run(40_000);
        let r = core.run(60_000);
        let e = model.energy(&r, &d.power_config(s));
        results.push((r, e));
    }
    let (base_r, base_e) = &results[0];
    let (het_r, het_e) = &results[1];
    assert!(
        het_r.speedup_over(base_r) > 1.05,
        "M3D-Het speedup {}",
        het_r.speedup_over(base_r)
    );
    assert!(
        het_e.total_j() < 0.85 * base_e.total_j(),
        "M3D-Het energy {} vs {}",
        het_e.total_j(),
        base_e.total_j()
    );
}

#[test]
fn simulation_to_thermal() {
    // Power from a simulated interval feeds the thermal solver; the M3D
    // stack stays within ~15 C of the 2D core while TSV3D runs much hotter.
    let s = space();
    let model = CorePowerModel::new_22nm();
    let p = spec_by_name("Gamess").expect("profile");

    let blocks_for = |d: DesignPoint| {
        let gen = TraceGenerator::new(&p, 5, 0, 1);
        let mut core = Core::new(0, d.core_config(), gen);
        let _ = core.run(40_000);
        let r = core.run(40_000);
        model.block_powers(&r, &d.power_config(s))
    };

    let cfg = ThermalConfig::default();
    let base_blocks = blocks_for(DesignPoint::Base);
    let fp2d = Floorplan::ryzen_like(9.0e-6);
    let power2d = fp2d.power_from_named(&base_blocks);
    let base = solve(
        &LayerStack::planar_2d(),
        &[LayerPower {
            floorplan: fp2d,
            power_w: power2d,
        }],
        &cfg,
    );

    let het_blocks = blocks_for(DesignPoint::M3dHet);
    let fp3d = Floorplan::ryzen_like(9.0e-6).scaled(0.5);
    let half: Vec<(&str, f64)> = het_blocks.iter().map(|&(n, w)| (n, w * 0.5)).collect();
    let layer = LayerPower {
        floorplan: fp3d.clone(),
        power_w: fp3d.power_from_named(&half),
    };
    let m3d = solve(&LayerStack::m3d(), &[layer.clone(), layer.clone()], &cfg);
    let tsv = solve(&LayerStack::tsv3d(), &[layer.clone(), layer], &cfg);

    assert!(
        m3d.peak_c - base.peak_c < 15.0,
        "M3D {} vs base {}",
        m3d.peak_c,
        base.peak_c
    );
    assert!(
        tsv.peak_c > m3d.peak_c + 3.0,
        "TSV {} vs M3D {}",
        tsv.peak_c,
        m3d.peak_c
    );
}

#[test]
fn multicore_iso_power_headline() {
    // M3D-Het-2X (8 cores, 3.3 GHz, 0.75 V) vs the 4-core Base: large
    // speedup for the same total work at comparable power.
    let s = space();
    let model = CorePowerModel::new_22nm();
    let app = parallel_by_name("Fft").expect("profile");

    let run = |d: MulticoreDesign| {
        let mut mc = Multicore::new(d.core_config(), &app, 9, d.n_cores());
        let _ = mc.run(15_000);
        let r = mc.run(25_000);
        let e = model.energy(&r, &d.power_config(s));
        (
            r.time_s() / r.instructions as f64,
            e.average_power_w(),
            e.total_j() / r.instructions as f64,
        )
    };
    let (base_tpw, base_w, base_epw) = run(MulticoreDesign::Base4);
    let (x2_tpw, x2_w, x2_epw) = run(MulticoreDesign::M3dHet2x8);

    let speedup = base_tpw / x2_tpw;
    assert!(speedup > 1.4, "Het-2X speedup {speedup}");
    assert!(x2_w / base_w < 1.5, "power ratio {}", x2_w / base_w);
    assert!(x2_epw < base_epw, "energy/work {} vs {}", x2_epw, base_epw);
}

#[test]
fn logic_and_storage_planning_compose() {
    // The hetero core combines the slack-driven logic partition (no
    // frequency loss) with asymmetric storage partitioning; the resulting
    // derived frequency recovers most of the iso-layer gain.
    let adder = m3d_logic::adder::carry_skip_adder(64, 4);
    let logic = m3d_logic::partition::partition_hetero(&adder, 0.17);
    assert!(logic.delay_ratio() <= 1.0 + 1e-9);

    let d = space().derived;
    let recovered = (d.het_ghz - 3.3) / (d.iso_ghz - 3.3);
    assert!(
        recovered > 0.5,
        "hetero recovers only {:.0}% of the iso gain",
        recovered * 100.0
    );
    assert!(d.het_ghz > d.het_naive_ghz);
}

#[test]
fn deterministic_results_across_runs() {
    let p = spec_by_name("Bzip2").expect("profile");
    let run = || {
        let gen = TraceGenerator::new(&p, 123, 0, 1);
        let mut core = Core::new(0, DesignPoint::Base.core_config(), gen);
        let _ = core.run(10_000);
        core.run(20_000)
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.activity, b.activity);
}
