//! # m3d — Designing Vertical Processors in Monolithic 3D
//!
//! A from-scratch Rust reproduction of Gopireddy & Torrellas, *Designing
//! Vertical Processors in Monolithic 3D* (ISCA 2019): partitioning a
//! processor's logic and storage structures across two monolithic-3D device
//! layers, including the hetero-layer case where the sequentially-fabricated
//! top layer is ~17% slower.
//!
//! The workspace implements every substrate the paper depends on:
//!
//! | Crate | Role |
//! |---|---|
//! | [`m3d_tech`] | Vias (MIV/TSV), processes, wires, thermal layer stacks |
//! | [`m3d_sram`] | CACTI-like SRAM/CAM model + BP/WP/PP partitioning |
//! | [`m3d_logic`] | Gate-level netlists, STA, slack-driven partitioning |
//! | [`m3d_power`] | McPAT-style energy model, DVFS curve |
//! | [`m3d_thermal`] | HotSpot-style layered grid solver |
//! | [`m3d_uarch`] | Cycle-level OOO multicore simulator |
//! | [`m3d_workloads`] | Synthetic SPEC2006 / SPLASH-2 / PARSEC traces |
//! | [`m3d_core`] | The partition planner, Table 11 configs, experiments |
//!
//! # Quickstart
//!
//! ```
//! use m3d_sram::partition3d::{best_partition, Strategy};
//! use m3d_sram::structures::StructureId;
//! use m3d_tech::{TechnologyNode, ViaKind};
//!
//! // Partition the paper's 18-port register file for M3D.
//! let node = TechnologyNode::n22();
//! let (strategy, _, reduction) =
//!     best_partition(&StructureId::Rf.spec(), &node, ViaKind::Miv);
//! assert_eq!(strategy, Strategy::Port); // Table 6: PP wins for the RF
//! assert!(reduction.latency_pct > 20.0);
//! ```
//!
//! Run `cargo run --release -p m3d-bench --bin repro` to regenerate every
//! table and figure; see `EXPERIMENTS.md` for paper-vs-measured numbers.

#![warn(missing_docs)]

pub use m3d_core as core_api;
pub use m3d_logic as logic;
pub use m3d_power as power;
pub use m3d_sram as sram;
pub use m3d_tech as tech;
pub use m3d_thermal as thermal;
pub use m3d_uarch as uarch;
pub use m3d_workloads as workloads;
